//! Command-line driver for the conformance harness.
//!
//! ```text
//! cargo run -p conformance -- sweep [--quick|--full] [--seed N]
//! cargo run -p conformance -- repro --seed N --point i,j,k
//! ```
//!
//! Exits non-zero when any invariant is violated, so CI can gate on it.

use conformance::sweep::{run_crash_sweep, run_sweep};
use conformance::SweepConfig;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("repro") => cmd_repro(&args[1..]),
        _ => {
            eprintln!("usage: conformance sweep [--quick|--full] [--crash] [--seed N]");
            eprintln!("       conformance repro [--crash] --seed N --point i,j,k");
            ExitCode::from(2)
        }
    }
}

fn cmd_sweep(args: &[String]) -> ExitCode {
    let mut quick = true;
    let mut seed = 1u64;
    let mut crash = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--full" => quick = false,
            "--crash" => crash = true,
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => return usage_error("--seed needs an integer"),
            },
            other => return usage_error(&format!("unknown sweep flag {other}")),
        }
    }
    let config = if quick {
        SweepConfig::quick(seed)
    } else {
        SweepConfig::full(seed)
    };
    let report = if crash {
        run_crash_sweep(config)
    } else {
        run_sweep(config)
    };
    print!("{}", report.text);
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_repro(args: &[String]) -> ExitCode {
    let mut seed: Option<u64> = None;
    let mut point: Option<(usize, usize, usize)> = None;
    let mut crash = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => seed = it.next().and_then(|s| s.parse().ok()),
            "--point" => point = it.next().and_then(|s| parse_point(s)),
            "--crash" => crash = true,
            other => return usage_error(&format!("unknown repro flag {other}")),
        }
    }
    let (Some(seed), Some(ix)) = (seed, point) else {
        return usage_error("repro needs --seed N and --point i,j,k");
    };
    // Look the point up in whichever grid contains it: the quick grid is
    // not a prefix of the full one, so try both, quick first.
    let scenario = if crash {
        let grid_point = SweepConfig::quick(seed)
            .crash_point(ix)
            .or_else(|| SweepConfig::full(seed).crash_point(ix));
        let Some(grid_point) = grid_point else {
            return usage_error(&format!("point {ix:?} is outside both crash grids"));
        };
        grid_point.scenario(seed)
    } else {
        let grid_point = SweepConfig::quick(seed)
            .point(ix)
            .or_else(|| SweepConfig::full(seed).point(ix));
        let Some(grid_point) = grid_point else {
            return usage_error(&format!("point {ix:?} is outside both grids"));
        };
        grid_point.scenario(seed)
    };
    println!(
        "repro: sweep seed {} point {:?} (crash={}) -> scenario seed {}",
        seed, ix, crash, scenario.seed,
    );
    println!("{scenario:#?}");
    let report = scenario.run();
    println!("{report:#?}");
    if report.ok() {
        println!("result: PASS (all invariants held)");
        ExitCode::SUCCESS
    } else {
        println!("result: FAIL ({} violation(s))", report.violations.len());
        ExitCode::FAILURE
    }
}

fn parse_point(s: &str) -> Option<(usize, usize, usize)> {
    let mut parts = s.split(',').map(|p| p.trim().parse::<usize>());
    match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(Ok(i)), Some(Ok(j)), Some(Ok(k)), None) => Some((i, j, k)),
        _ => None,
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::from(2)
}
