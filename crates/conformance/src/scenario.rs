//! Seeded end-to-end scenarios: workload shape × fault model × lifecycle
//! chaos, run through the full stack and checked against the oracle.

use crate::invariants;
use ask::config::AskConfig;
use ask::service::{reference_aggregate_op, AskService, AskServiceBuilder};
use ask_simnet::faults::FaultModel;
use ask_simnet::link::LinkConfig;
use ask_simnet::time::{SimDuration, SimTime};
use ask_wire::key::Key;
use ask_wire::packet::{AggregateOp, KvTuple, TaskId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fault-model settings for every host↔switch link of a scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Independent frame-loss probability.
    pub loss: f64,
    /// Probability a delivered frame is delivered twice.
    pub duplication: f64,
    /// Probability a delivered frame picks up extra reorder jitter.
    pub reorder: f64,
    /// Jitter magnitude for reordered frames, in microseconds.
    pub reorder_jitter_us: u64,
    /// Probability of a single-bit payload corruption (rejected by the
    /// envelope CRC downstream, so it behaves like targeted loss).
    pub corruption: f64,
}

impl FaultSpec {
    /// A fault-free network.
    pub fn none() -> Self {
        FaultSpec {
            loss: 0.0,
            duplication: 0.0,
            reorder: 0.0,
            reorder_jitter_us: 0,
            corruption: 0.0,
        }
    }

    fn model(&self) -> FaultModel {
        let mut f = FaultModel::reliable();
        if self.loss > 0.0 {
            f = f.with_loss(self.loss);
        }
        if self.duplication > 0.0 {
            f = f.with_duplication(self.duplication);
        }
        if self.reorder > 0.0 {
            f = f.with_reordering(
                self.reorder,
                SimDuration::from_micros(self.reorder_jitter_us),
            );
        }
        if self.corruption > 0.0 {
            f = f.with_corruption(self.corruption);
        }
        f
    }
}

/// A switch outage injected mid-run.
///
/// The crash instant is specified as a fraction of the *fault-free*
/// completion time: the scenario first runs once without the outage to
/// measure it, then reruns from scratch with the switch scheduled down at
/// `down_at_permille`‰ of that time for `outage_us` microseconds. Phrasing
/// the instant relative to the clean run keeps the crash axis meaningful
/// across workload sizes and seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSpec {
    /// Crash instant in thousandths of the fault-free completion time
    /// (0 = immediately, 999 = just before the finish line).
    pub down_at_permille: u32,
    /// Outage length in microseconds. Must exceed any reorder jitter so
    /// delayed old-epoch frames land after the restart, not during it.
    pub outage_us: u64,
}

/// One fully-specified conformance scenario. Everything — workload, faults,
/// chaos — derives deterministically from the fields, so a failing run is
/// reproducible from the printed scenario alone.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Master seed for workload generation, simulation, and fault draws.
    pub seed: u64,
    /// Separate seed for the fault-model RNG; `None` ties it to `seed`.
    pub fault_seed: Option<u64>,
    /// Remote sending hosts (the receiver is an additional host).
    pub senders: usize,
    /// Whether the receiver also feeds a co-located stream (§5.5).
    pub colocated_sender: bool,
    /// Tuples per sending host.
    pub tuples_per_sender: usize,
    /// Distinct short keys in the workload.
    pub distinct_keys: usize,
    /// Zipf skew exponent for key popularity.
    pub zipf_s: f64,
    /// Approximate fraction of tuples carrying long (switch-bypass) keys.
    pub long_key_ratio: f64,
    /// Aggregation operator.
    pub op: AggregateOp,
    /// Link fault model.
    pub faults: FaultSpec,
    /// Sender sliding-window size `W`.
    pub window: usize,
    /// Data channels per host.
    pub data_channels: usize,
    /// Shadow-copy swap threshold (0 disables mid-stream swaps).
    pub swap_threshold: u64,
    /// Aggregators granted per task per AA copy.
    pub region_aggregators: usize,
    /// Restart every daemon mid-run from crash-consistent state.
    pub restart_mid_run: bool,
    /// Crash-restart the switch mid-run (wipes every register array and
    /// bumps the epoch); `None` leaves the switch up for the whole run.
    pub crash: Option<CrashSpec>,
    /// Forces the switch onto the legacy materializing datapath instead of
    /// the zero-materialization view path. The two must be byte-identical;
    /// differential properties run every scenario under both settings.
    pub switch_scalar: bool,
    /// Forces the host daemons onto the legacy materializing receive path
    /// instead of the zero-materialization view ingest. Same differential
    /// contract as `switch_scalar`.
    pub host_scalar: bool,
}

impl Scenario {
    /// A small, fast scenario with no faults — the base the sweep and the
    /// property tests perturb.
    pub fn base(seed: u64) -> Self {
        Scenario {
            seed,
            fault_seed: None,
            senders: 3,
            colocated_sender: false,
            tuples_per_sender: 400,
            distinct_keys: 64,
            zipf_s: 1.05,
            long_key_ratio: 1.0 / 16.0,
            op: AggregateOp::Sum,
            faults: FaultSpec::none(),
            window: 8,
            data_channels: 1,
            swap_threshold: 16,
            region_aggregators: 32,
            restart_mid_run: false,
            crash: None,
            switch_scalar: false,
            host_scalar: false,
        }
    }

    fn config(&self) -> AskConfig {
        let mut cfg = AskConfig::tiny();
        cfg.window = self.window;
        cfg.data_channels = self.data_channels;
        cfg.swap_threshold = self.swap_threshold;
        cfg.region_aggregators = self.region_aggregators;
        cfg.absorption_audit = true;
        cfg.switch_scalar = self.switch_scalar;
        cfg.host_scalar = self.host_scalar;
        cfg
    }

    /// Generates one sender's deterministic tuple stream.
    fn stream(&self, rng: &mut StdRng) -> Vec<KvTuple> {
        let long_every = if self.long_key_ratio > 0.0 {
            (1.0 / self.long_key_ratio).round().max(1.0) as u64
        } else {
            u64::MAX
        };
        let ranks = ask_workloads::zipf::zipf_stream(
            rng,
            self.distinct_keys,
            self.tuples_per_sender as u64,
            self.zipf_s,
            ask_workloads::zipf::StreamOrder::Shuffled,
        );
        ranks
            .into_iter()
            .enumerate()
            .map(|(i, rank)| {
                let key = if long_every != u64::MAX && (i as u64).is_multiple_of(long_every) {
                    // > 8 bytes: bypasses the switch on the tiny layout.
                    Key::from_str(&format!("longkey-{rank:06}")).expect("valid key")
                } else {
                    Key::from_u64(rank + 1) // + 1: keys must be non-empty
                };
                KvTuple::new(key, rng.gen_range(1..100))
            })
            .collect()
    }

    /// Runs the scenario end to end and checks every invariant.
    ///
    /// With a [`CrashSpec`] this is a two-pass run: a fault-free-of-crash
    /// pass measures the completion time, then the real pass schedules the
    /// outage at the requested fraction of it. The final per-key result
    /// must equal the oracle either way.
    pub fn run(&self) -> RunReport {
        let Some(crash) = self.crash else {
            return self.run_with_outage(None);
        };
        let mut clean = self.clone();
        clean.crash = None;
        let clean_report = clean.run_with_outage(None);
        let Some(t) = clean_report.completed_at_ns else {
            // The crash-free baseline already fails; report that directly
            // rather than crashing a run that never completes.
            return clean_report;
        };
        let down =
            SimTime::from_nanos((t.saturating_mul(crash.down_at_permille as u64) / 1000).max(1));
        let up = down + SimDuration::from_micros(crash.outage_us);
        self.run_with_outage(Some((down, up)))
    }

    fn run_with_outage(&self, outage: Option<(SimTime, SimTime)>) -> RunReport {
        let task = TaskId(7);
        let hosts_needed = self.senders + 1;
        let link = LinkConfig::new(100e9, SimDuration::from_micros(1))
            .with_faults(self.faults.model());
        let mut builder = AskServiceBuilder::new(hosts_needed)
            .config(self.config())
            .link(link)
            .seed(self.seed);
        if let Some(fs) = self.fault_seed {
            builder = builder.fault_seed(fs);
        }
        let mut service: AskService = builder.build();

        let receiver = service.hosts()[0];
        let sender_hosts: Vec<_> = service.hosts()[1..].to_vec();
        let mut task_senders = sender_hosts.clone();
        if self.colocated_sender {
            task_senders.push(receiver);
        }
        service.submit_task_with_op(task, receiver, &task_senders, self.op);

        // Workload generation is seeded separately from the simulation so
        // the same streams feed every fault grid point.
        let mut wl_rng = StdRng::seed_from_u64(self.seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut all_tuples = Vec::new();
        for &s in &task_senders {
            let tuples = self.stream(&mut wl_rng);
            all_tuples.extend(tuples.iter().cloned());
            service.submit_stream(task, s, tuples);
        }
        let expected = reference_aggregate_op(all_tuples.iter().cloned(), self.op);

        if let Some((down, up)) = outage {
            service.schedule_switch_outage(down, up);
        }

        if self.restart_mid_run {
            // Let the protocol get airborne, then crash-restart every
            // daemon (index order, deterministic) and resume.
            service.network_mut().run(None, Some(2_000));
            for &h in service.hosts().to_vec().iter() {
                service.recover_host(h);
            }
        }

        let budget = 10_000_000u64;
        let run = service.run_until_complete(task, receiver, budget);
        let mut violations = Vec::new();
        let completed_at_ns = match run {
            Ok(at) => Some(at.as_nanos()),
            Err(e) => {
                violations.push(format!("run did not complete: {e}"));
                None
            }
        };
        violations.extend(
            invariants::check(&service, task, receiver, &expected, outage.is_some()).violations,
        );

        let sw = service.switch_stats(task).unwrap_or_default();
        let mut host = ask::stats::HostStats::default();
        for &h in service.hosts() {
            host.merge(&service.host_stats(h));
        }
        let eligible = sw.tuples_aggregated + sw.tuples_forwarded;
        RunReport {
            violations,
            completed_at_ns,
            packets_sent: host.packets_sent,
            retransmissions: host.retransmissions,
            duplicates_detected: sw.duplicates_detected,
            tuples_switch_aggregated: sw.tuples_aggregated,
            tuples_host_aggregated: host.tuples_host_aggregated,
            switch_aggregation_permille: (sw.tuples_aggregated * 1000)
                .checked_div(eligible)
                .unwrap_or(0),
            switch_epoch: service.switch_epoch(),
            stale_epoch_drops: service.switch_ref().stale_epoch_drops()
                + host.stale_epoch_drops,
        }
    }
}

/// Outcome of one scenario run: invariant verdicts plus the counters the
/// sweep report prints. All integers, so reports are bit-stable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Human-readable invariant violations; empty means the run conformed.
    pub violations: Vec<String>,
    /// Simulated completion time, if the task finished.
    pub completed_at_ns: Option<u64>,
    /// First transmissions across all hosts.
    pub packets_sent: u64,
    /// Timeout-driven retransmissions across all hosts.
    pub retransmissions: u64,
    /// Retransmissions the switch dedup gate recognized.
    pub duplicates_detected: u64,
    /// Tuples absorbed into switch memory.
    pub tuples_switch_aggregated: u64,
    /// Tuples aggregated host-side (residuals, long keys, co-located).
    pub tuples_host_aggregated: u64,
    /// Switch aggregation ratio over eligible tuples, in permille.
    pub switch_aggregation_permille: u64,
    /// Switch incarnation at end of run (0 = never crashed).
    pub switch_epoch: u32,
    /// Old-epoch frames rejected across the switch and every host.
    pub stale_epoch_drops: u64,
}

impl RunReport {
    /// True when every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}
