//! Deterministic chaos sweep over a loss × duplication × reorder grid.
//!
//! Every grid point runs a fixed base scenario under a seeded fault model;
//! the per-point seed is derived from the sweep seed and the point's grid
//! indices, so any failure is reproducible from the printed
//! `(seed, grid-point)` pair alone:
//!
//! ```text
//! cargo run -p conformance -- repro --seed <seed> --point <i,j,k>
//! ```

use crate::scenario::{CrashSpec, FaultSpec, RunReport, Scenario};
use std::fmt::Write as _;

/// Loss-probability axis (index `i`).
const LOSS_QUICK: &[f64] = &[0.0, 0.05, 0.2];
const LOSS_FULL: &[f64] = &[0.0, 0.02, 0.1, 0.25];

/// Duplication-probability axis (index `j`).
const DUP_QUICK: &[f64] = &[0.0, 0.2];
const DUP_FULL: &[f64] = &[0.0, 0.1, 0.3];

/// Reorder axis (index `k`): `(probability, jitter in µs)`.
const REORDER_QUICK: &[(f64, u64)] = &[(0.0, 0), (0.5, 10)];
const REORDER_FULL: &[(f64, u64)] = &[(0.0, 0), (0.3, 5), (0.8, 20)];

/// Crash-sweep axes: loss (index `i`), reorder (index `j`), and crash
/// instant in permille of the clean completion time (index `k`). The
/// outage is fixed well above the reorder jitter bound so delayed
/// old-epoch frames always land on the restarted switch.
const CRASH_LOSS_QUICK: &[f64] = &[0.0, 0.2];
const CRASH_LOSS_FULL: &[f64] = &[0.0, 0.05, 0.2];
const CRASH_REORDER: &[(f64, u64)] = &[(0.0, 0), (0.5, 10)];
const CRASH_PERMILLE_QUICK: &[u32] = &[250, 600, 900];
const CRASH_PERMILLE_FULL: &[u32] = &[100, 350, 600, 850, 990];
const CRASH_OUTAGE_US: u64 = 50;

/// Sweep shape: seed plus grid resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepConfig {
    /// Base seed mixed into every grid point's scenario seed.
    pub seed: u64,
    /// Coarse 3×2×2 grid (CI smoke) instead of the full 4×3×3 one.
    pub quick: bool,
}

impl SweepConfig {
    /// The coarse 12-point grid used by the CI smoke job.
    pub fn quick(seed: u64) -> Self {
        SweepConfig { seed, quick: true }
    }

    /// The full 36-point grid.
    pub fn full(seed: u64) -> Self {
        SweepConfig { seed, quick: false }
    }

    fn axes(&self) -> (&'static [f64], &'static [f64], &'static [(f64, u64)]) {
        if self.quick {
            (LOSS_QUICK, DUP_QUICK, REORDER_QUICK)
        } else {
            (LOSS_FULL, DUP_FULL, REORDER_FULL)
        }
    }

    /// All grid points of this sweep, in row-major `(i, j, k)` order.
    pub fn grid(&self) -> Vec<GridPoint> {
        let (loss, dup, reorder) = self.axes();
        let mut points = Vec::with_capacity(loss.len() * dup.len() * reorder.len());
        for (i, &l) in loss.iter().enumerate() {
            for (j, &d) in dup.iter().enumerate() {
                for (k, &(r, jit)) in reorder.iter().enumerate() {
                    points.push(GridPoint {
                        ix: (i, j, k),
                        faults: FaultSpec {
                            loss: l,
                            duplication: d,
                            reorder: r,
                            reorder_jitter_us: jit,
                            corruption: 0.0,
                        },
                    });
                }
            }
        }
        points
    }

    /// The grid point at `(i, j, k)`, if within this sweep's grid.
    pub fn point(&self, ix: (usize, usize, usize)) -> Option<GridPoint> {
        let (loss, dup, reorder) = self.axes();
        let (&l, &d, &(r, jit)) = (loss.get(ix.0)?, dup.get(ix.1)?, reorder.get(ix.2)?);
        Some(GridPoint {
            ix,
            faults: FaultSpec {
                loss: l,
                duplication: d,
                reorder: r,
                reorder_jitter_us: jit,
                corruption: 0.0,
            },
        })
    }

    fn crash_axes(&self) -> (&'static [f64], &'static [(f64, u64)], &'static [u32]) {
        if self.quick {
            (CRASH_LOSS_QUICK, CRASH_REORDER, CRASH_PERMILLE_QUICK)
        } else {
            (CRASH_LOSS_FULL, CRASH_REORDER, CRASH_PERMILLE_FULL)
        }
    }

    /// All points of the crash sweep's loss × reorder × crash-instant grid,
    /// in row-major `(i, j, k)` order.
    pub fn crash_grid(&self) -> Vec<CrashGridPoint> {
        let (loss, reorder, permille) = self.crash_axes();
        let mut points = Vec::with_capacity(loss.len() * reorder.len() * permille.len());
        for (i, &l) in loss.iter().enumerate() {
            for (j, &(r, jit)) in reorder.iter().enumerate() {
                for (k, &p) in permille.iter().enumerate() {
                    points.push(CrashGridPoint {
                        ix: (i, j, k),
                        faults: FaultSpec {
                            loss: l,
                            duplication: 0.0,
                            reorder: r,
                            reorder_jitter_us: jit,
                            corruption: 0.0,
                        },
                        crash: CrashSpec {
                            down_at_permille: p,
                            outage_us: CRASH_OUTAGE_US,
                        },
                    });
                }
            }
        }
        points
    }

    /// The crash-grid point at `(i, j, k)`, if within this sweep's grid.
    pub fn crash_point(&self, ix: (usize, usize, usize)) -> Option<CrashGridPoint> {
        let (loss, reorder, permille) = self.crash_axes();
        let (&l, &(r, jit), &p) = (loss.get(ix.0)?, reorder.get(ix.1)?, permille.get(ix.2)?);
        Some(CrashGridPoint {
            ix,
            faults: FaultSpec {
                loss: l,
                duplication: 0.0,
                reorder: r,
                reorder_jitter_us: jit,
                corruption: 0.0,
            },
            crash: CrashSpec {
                down_at_permille: p,
                outage_us: CRASH_OUTAGE_US,
            },
        })
    }
}

/// One cell of the chaos grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPoint {
    /// Grid indices `(loss, duplication, reorder)` — the repro coordinates.
    pub ix: (usize, usize, usize),
    /// The fault model this cell injects.
    pub faults: FaultSpec,
}

impl GridPoint {
    /// The fully-specified scenario this point runs under `base_seed`.
    pub fn scenario(&self, base_seed: u64) -> Scenario {
        let seed = point_seed(base_seed, self.ix);
        let mut s = Scenario::base(seed);
        // Fault draws get their own stream so the same sweep seed exercises
        // the same workload/timing at every grid point.
        s.fault_seed = Some(splitmix64(seed ^ 0x5bd1_e995));
        s.faults = self.faults;
        s
    }
}

/// One cell of the crash grid: a fault model plus a crash instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashGridPoint {
    /// Grid indices `(loss, reorder, crash-instant)` — the repro coordinates.
    pub ix: (usize, usize, usize),
    /// The fault model this cell injects.
    pub faults: FaultSpec,
    /// The switch outage this cell injects.
    pub crash: CrashSpec,
}

impl CrashGridPoint {
    /// The fully-specified scenario this point runs under `base_seed`.
    /// Seeds are salted differently from the fault grid's, so the two
    /// sweeps never share a scenario seed.
    pub fn scenario(&self, base_seed: u64) -> Scenario {
        let seed = point_seed(base_seed ^ 0xc4a5_0c8a_11e0_u64, self.ix);
        let mut s = Scenario::base(seed);
        s.fault_seed = Some(splitmix64(seed ^ 0x5bd1_e995));
        s.faults = self.faults;
        s.crash = Some(self.crash);
        s
    }
}

/// Everything one sweep produced: the printable report plus the verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepReport {
    /// Full human-readable report; byte-identical across repeat runs.
    pub text: String,
    /// Grid points run.
    pub points: usize,
    /// Grid points with at least one invariant violation.
    pub failures: usize,
}

impl SweepReport {
    /// True when every grid point conformed.
    pub fn ok(&self) -> bool {
        self.failures == 0
    }
}

/// Runs every grid point of `config` and renders the deterministic report.
pub fn run_sweep(config: SweepConfig) -> SweepReport {
    let grid = config.grid();
    let mut text = String::new();
    let _ = writeln!(
        text,
        "conformance sweep: seed={} grid={} ({} points)",
        config.seed,
        if config.quick { "quick" } else { "full" },
        grid.len(),
    );
    let mut failures = 0;
    for point in &grid {
        let report = point.scenario(config.seed).run();
        let _ = writeln!(text, "{}", render_point(config.seed, point, &report));
        if !report.ok() {
            failures += 1;
            for v in &report.violations {
                let _ = writeln!(text, "    violation: {v}");
            }
        }
    }
    let _ = writeln!(
        text,
        "result: {} ({} of {} points failed)",
        if failures == 0 { "PASS" } else { "FAIL" },
        failures,
        grid.len(),
    );
    SweepReport {
        text,
        points: grid.len(),
        failures,
    }
}

/// Runs every point of `config`'s crash grid and renders the deterministic
/// report: the same scenario re-run with a switch outage at each crash
/// instant, with epoch and stale-drop counters in every line.
pub fn run_crash_sweep(config: SweepConfig) -> SweepReport {
    let grid = config.crash_grid();
    let mut text = String::new();
    let _ = writeln!(
        text,
        "conformance crash sweep: seed={} grid={} ({} points, outage={}us)",
        config.seed,
        if config.quick { "quick" } else { "full" },
        grid.len(),
        CRASH_OUTAGE_US,
    );
    let mut failures = 0;
    for point in &grid {
        let report = point.scenario(config.seed).run();
        let _ = writeln!(text, "{}", render_crash_point(config.seed, point, &report));
        if !report.ok() {
            failures += 1;
            for v in &report.violations {
                let _ = writeln!(text, "    violation: {v}");
            }
        }
    }
    let _ = writeln!(
        text,
        "result: {} ({} of {} points failed)",
        if failures == 0 { "PASS" } else { "FAIL" },
        failures,
        grid.len(),
    );
    SweepReport {
        text,
        points: grid.len(),
        failures,
    }
}

/// One report line for a grid point; stable formatting, integers only
/// except the grid's own fixed fault probabilities.
fn render_point(base_seed: u64, point: &GridPoint, report: &RunReport) -> String {
    let (i, j, k) = point.ix;
    let f = &point.faults;
    format!(
        "point {i},{j},{k} seed={} loss={:.2} dup={:.2} reorder={:.2}/{}us : {} \
         sent={} retx={} dups={} sw_permille={}",
        base_seed,
        f.loss,
        f.duplication,
        f.reorder,
        f.reorder_jitter_us,
        if report.ok() { "OK" } else { "FAIL" },
        report.packets_sent,
        report.retransmissions,
        report.duplicates_detected,
        report.switch_aggregation_permille,
    )
}

/// One crash-sweep report line: grid coordinates, fault mix, crash instant,
/// verdict, and the recovery counters.
fn render_crash_point(base_seed: u64, point: &CrashGridPoint, report: &RunReport) -> String {
    let (i, j, k) = point.ix;
    let f = &point.faults;
    format!(
        "point {i},{j},{k} seed={} loss={:.2} reorder={:.2}/{}us crash={}permille : {} \
         sent={} retx={} epoch={} stale={} sw_permille={}",
        base_seed,
        f.loss,
        f.reorder,
        f.reorder_jitter_us,
        point.crash.down_at_permille,
        if report.ok() { "OK" } else { "FAIL" },
        report.packets_sent,
        report.retransmissions,
        report.switch_epoch,
        report.stale_epoch_drops,
        report.switch_aggregation_permille,
    )
}

/// Derives a grid point's scenario seed from the sweep seed and indices.
pub fn point_seed(base: u64, ix: (usize, usize, usize)) -> u64 {
    let packed =
        ((ix.0 as u64) << 42) | ((ix.1 as u64) << 21) | ix.2 as u64;
    splitmix64(base ^ splitmix64(packed))
}

/// SplitMix64 finalizer — a well-mixed 64-bit permutation.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_has_12_points_full_has_36() {
        assert_eq!(SweepConfig::quick(1).grid().len(), 12);
        assert_eq!(SweepConfig::full(1).grid().len(), 36);
    }

    #[test]
    fn point_lookup_matches_grid_enumeration() {
        let cfg = SweepConfig::quick(9);
        for p in cfg.grid() {
            assert_eq!(cfg.point(p.ix), Some(p));
        }
        assert_eq!(cfg.point((99, 0, 0)), None);
    }

    #[test]
    fn crash_grid_shape_and_lookup() {
        assert_eq!(SweepConfig::quick(1).crash_grid().len(), 12);
        assert_eq!(SweepConfig::full(1).crash_grid().len(), 30);
        let cfg = SweepConfig::quick(9);
        for p in cfg.crash_grid() {
            assert_eq!(cfg.crash_point(p.ix), Some(p));
            // Every point's outage must exceed its reorder jitter bound, or
            // delayed old-epoch frames could land while the switch is down.
            assert!(p.crash.outage_us > p.faults.reorder_jitter_us);
        }
        assert_eq!(cfg.crash_point((0, 0, 99)), None);
    }

    #[test]
    fn point_seeds_are_distinct_across_the_grid() {
        let cfg = SweepConfig::full(42);
        let mut seeds: Vec<u64> = cfg
            .grid()
            .iter()
            .map(|p| point_seed(cfg.seed, p.ix))
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 36);
    }
}
