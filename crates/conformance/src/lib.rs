//! Model-based conformance harness for the ASK reliability protocol.
//!
//! The full stack (host daemon → wire codec → PISA switch → simulated
//! network) is run against a trivially-correct in-memory oracle
//! ([`ask::service::reference_aggregate_op`]), and four end-to-end
//! invariants are asserted after every run:
//!
//! 1. **Conservation** — the delivered aggregate equals the oracle's
//!    aggregate of every ingested tuple, per key;
//! 2. **No duplicate absorption** — a sequence number's tuples enter switch
//!    memory at most once, however often the network duplicates or the
//!    sender retransmits (checked by the switch's absorption audit, which
//!    catches violations even when the operator makes them value-invisible,
//!    e.g. `MAX`);
//! 3. **Window safety** — no sender channel ever holds more than `W`
//!    unacknowledged packets, everything drains by completion, and no
//!    fetched tuple is lost between switch and receiver;
//! 4. **PISA legality** — no pipeline pass violated the register-access or
//!    stage-ordering constraints of `ask-pisa`.
//!
//! Two drivers feed the harness: a deterministic chaos [`sweep`] over a
//! loss × duplication × reorder grid (every failure reproducible from its
//! `(seed, grid-point)` pair), and proptest scenario generators in this
//! crate's test suite (workload shape, key skew, fault model, mid-run
//! daemon restart).

pub mod invariants;
pub mod scenario;
pub mod sweep;

pub use invariants::InvariantReport;
pub use scenario::{CrashSpec, FaultSpec, RunReport, Scenario};
pub use sweep::{run_crash_sweep, run_sweep, CrashGridPoint, GridPoint, SweepConfig};
