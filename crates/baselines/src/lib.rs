//! # ask-baselines — every comparator in the ASK paper's evaluation
//!
//! - [`preaggr`]: the host-only sort-merge aggregation baseline of §5.2.1
//!   (Figure 7);
//! - [`noaggr`]: pure DPDK-style transmission with receiver-side
//!   aggregation, run event-driven on [`ask_simnet`] (§5.7, Figure 13);
//! - [`spark`]: a miniature Spark-like MapReduce cost engine with Vanilla /
//!   SHM / RDMA / ASK variants (§5.5, Figures 3, 10, 11);
//! - [`training`]: ATP, SwitchML, ASK-BytePS, and plain-PS training
//!   throughput models (§5.6, Figure 12);
//! - [`cost`]: the calibrated host cost constants all of the above share.
//!
//! These are *models with documented assumptions*, not measurements: the
//! reproduction matches the paper's shapes (who wins, by what factor, where
//! crossovers fall), and `EXPERIMENTS.md` records model-vs-paper numbers
//! per figure.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cost;
pub mod noaggr;
pub mod preaggr;
pub mod spark;
pub mod training;

/// Convenient glob import.
pub mod prelude {
    pub use crate::cost::HostCostModel;
    pub use crate::noaggr::{run_noaggr, NoAggrReport};
    pub use crate::preaggr::{ask_expected_jct, run_preaggr, PreAggrReport};
    pub use crate::spark::{akv, Engine, JobReport, MiniSpark};
    pub use crate::training::{images_per_sec, TrainingConfig, TrainingSystem};
}
