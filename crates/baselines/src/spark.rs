//! A miniature Spark-like MapReduce cost engine — the Vanilla / SparkSHM /
//! SparkRDMA baselines of §5.5, plus the ASK-accelerated variant.
//!
//! The engine models a WordCount-style job as three phases with explicit
//! cost terms (calibrated in [`crate::cost`]):
//!
//! 1. **Map**: emit tuples, then (baselines only) sort-based local
//!    pre-aggregation — the paper's key observation is that this combiner
//!    step dominates mapper time, and ASK removes it entirely (Figure 11).
//! 2. **Shuffle**: intermediate data moves mapper → reducer; Vanilla spills
//!    through disk, SHM keeps it in memory, RDMA additionally gets a faster
//!    network.
//! 3. **Reduce**: merge arriving tuples into the final table.
//!
//! The ASK variant streams raw tuples through the switch instead: mappers
//!    pay only packetization + IO, reducers pay the residual fraction the
//!    switch could not absorb plus co-located mappers' local data.

use crate::cost::HostCostModel;
use ask_workloads::wordcount::WordCountJob;

/// Which engine runs the job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Engine {
    /// Vanilla Spark: combiner + disk shuffle + TCP.
    SparkVanilla,
    /// Spark with shared-memory shuffle (no disk IO).
    SparkShm,
    /// Spark with RDMA network IO.
    SparkRdma,
    /// Spark with ASK in-network aggregation.
    Ask {
        /// Fraction of streamed tuples the switch absorbs (measure it with
        /// the real `ask` stack; Table 1 reports 0.857–0.943).
        switch_absorption: f64,
    },
}

/// Phase and total timings of one job run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobReport {
    /// Mean map-task completion time, seconds (Figure 11 left).
    pub mapper_tct: f64,
    /// Mean reduce-task completion time, seconds (Figure 11 right).
    pub reducer_tct: f64,
    /// Job completion time, seconds (Figure 10).
    pub jct: f64,
    /// Total CPU core-seconds burned across the cluster.
    pub cpu_core_seconds: f64,
}

/// Cost engine for WordCount-style jobs.
#[derive(Debug, Clone)]
pub struct MiniSpark {
    cost: HostCostModel,
    /// Worker cores per machine available to tasks.
    cores_per_machine: usize,
}

impl MiniSpark {
    /// Creates the engine.
    ///
    /// # Panics
    ///
    /// Panics if `cores_per_machine == 0`.
    pub fn new(cost: HostCostModel, cores_per_machine: usize) -> Self {
        assert!(cores_per_machine > 0, "need at least one core");
        MiniSpark {
            cost,
            cores_per_machine,
        }
    }

    /// Runs `job` on `engine` and reports phase timings.
    pub fn run(&self, job: &WordCountJob, engine: Engine) -> JobReport {
        match engine {
            Engine::SparkVanilla => self.run_spark(job, true, self.cost.tcp_bps),
            Engine::SparkShm => self.run_spark(job, false, self.cost.tcp_bps),
            Engine::SparkRdma => self.run_spark(job, false, self.cost.rdma_bps),
            Engine::Ask { switch_absorption } => self.run_ask(job, switch_absorption),
        }
    }

    fn waves(&self, tasks: usize) -> f64 {
        (tasks as f64 / self.cores_per_machine as f64).ceil()
    }

    fn run_spark(&self, job: &WordCountJob, disk_shuffle: bool, net_bps: f64) -> JobReport {
        let c = &self.cost;
        let tuples = job.tuples_per_mapper;

        // Map task: emit + combiner (sort + neighbor merge).
        let mapper_tct =
            HostCostModel::tuple_seconds(tuples, c.map_emit_ns + c.preagg_ns) + c.task_overhead_s;
        let map_phase = self.waves(job.mappers_per_machine) * mapper_tct;

        // Intermediate volume after the combiner: one tuple per distinct key
        // per mapper (8 bytes each).
        let inter_per_mapper = job.distinct_keys_per_mapper.min(tuples) * 8;
        let inter_per_machine = inter_per_mapper * job.mappers_per_machine as u64;
        let mut shuffle = HostCostModel::transfer_seconds(inter_per_machine, net_bps);
        if disk_shuffle {
            shuffle += HostCostModel::transfer_seconds(inter_per_machine, c.disk_write_bps)
                + HostCostModel::transfer_seconds(inter_per_machine, c.disk_read_bps);
        }

        // Reduce task: every combined tuple is merged once, spread over the
        // cluster's reducers.
        let reducers = job.total_mappers(); // symmetric mapper/reducer counts
        let tuples_per_reducer =
            inter_per_mapper / 8 * job.total_mappers() as u64 / reducers as u64;
        let reducer_tct =
            HostCostModel::tuple_seconds(tuples_per_reducer, c.jvm_merge_ns) + c.task_overhead_s;
        let reduce_phase = self.waves(job.mappers_per_machine) * reducer_tct;

        let jct = map_phase + shuffle + reduce_phase;
        let cpu = job.total_mappers() as f64
            * HostCostModel::tuple_seconds(tuples, c.map_emit_ns + c.preagg_ns)
            + reducers as f64 * HostCostModel::tuple_seconds(tuples_per_reducer, c.jvm_merge_ns);
        JobReport {
            mapper_tct,
            reducer_tct,
            jct,
            cpu_core_seconds: cpu,
        }
    }

    fn run_ask(&self, job: &WordCountJob, absorption: f64) -> JobReport {
        assert!(
            (0.0..=1.0).contains(&absorption),
            "absorption is a fraction"
        );
        let c = &self.cost;
        let tuples = job.tuples_per_mapper;
        // ~24 short tuples ride one multi-key packet (paper layout).
        let tuples_per_packet = 24.0;

        // Map task: emit + hand tuples to the daemon via shared memory; the
        // daemon's packet IO is amortized per packet. No combiner, no sort.
        let mapper_cpu = HostCostModel::tuple_seconds(tuples, c.map_emit_ns)
            + HostCostModel::tuple_seconds(tuples, c.dpdk_packet_ns / tuples_per_packet);
        // NIC bound: all mappers on a machine share the 100 Gbps uplink;
        // each 8-byte tuple costs 8 + 78/24 wire bytes.
        let wire_bytes_per_tuple = 8.0 + 78.0 / tuples_per_packet;
        let machine_raw_bytes =
            job.mappers_per_machine as f64 * tuples as f64 * wire_bytes_per_tuple;
        let nic_seconds = machine_raw_bytes * 8.0 / c.nic_bps;
        // Mappers stream concurrently: each mapper's wall time is its CPU
        // time or its share of the NIC, whichever dominates.
        let mapper_tct = mapper_cpu.max(nic_seconds) + c.task_overhead_s;
        let map_phase = mapper_tct; // all mappers stream in parallel

        // Reducers merge (a) co-located mappers' data (1/machines of the
        // total — it never crosses the network) and (b) the unabsorbed
        // residual of remote data, plus the fetched switch table.
        let total_tuples = job.total_tuples();
        let local_share = total_tuples as f64 / job.machines as f64;
        let remote_share = total_tuples as f64 - local_share;
        let residual = remote_share * (1.0 - absorption);
        let fetched = job.distinct_keys_per_mapper as f64; // switch table size
        let merged_per_reducer = (local_share + residual + fetched) / job.total_mappers() as f64;
        let reducer_tct =
            HostCostModel::tuple_seconds(merged_per_reducer as u64, c.reduce_merge_ns)
                + c.task_overhead_s;
        let reduce_phase = self.waves(job.mappers_per_machine) * reducer_tct;

        // Streaming overlaps map and reduce; the tail is the reduce waves.
        let jct = map_phase + reduce_phase;
        let cpu = job.total_mappers() as f64 * mapper_cpu
            + job.total_mappers() as f64
                * HostCostModel::tuple_seconds(merged_per_reducer as u64, c.reduce_merge_ns);
        JobReport {
            mapper_tct,
            reducer_tct,
            jct,
            cpu_core_seconds: cpu,
        }
    }
}

/// Aggregation throughput (aggregated key-value tuples per second) models
/// for the single-machine comparison of Figure 3.
pub mod akv {
    use crate::cost::HostCostModel;

    /// Spark's aggregation throughput with `cores` cores: saturating
    /// scaling `a·c / (c + k)` fit to the paper's observations (peaks at 56
    /// cores, far below line rate).
    pub fn spark_akv_per_sec(cores: usize) -> f64 {
        let c = cores as f64;
        45e6 * c / (c + 20.0)
    }

    /// The strawman single-tuple-per-packet INA: per-core packet IO until
    /// the 100 Gbps line rate of 86-byte packets saturates.
    pub fn strawman_akv_per_sec(cores: usize, cost: &HostCostModel) -> f64 {
        let pps_per_core = 1e9 / cost.dpdk_packet_ns;
        let line_rate_pps = cost.nic_bps / (86.0 * 8.0);
        (cores as f64 * pps_per_core).min(line_rate_pps)
    }

    /// Full ASK with multi-key vectorization: 24 tuples per packet until
    /// the goodput-bound tuple rate saturates.
    pub fn ask_akv_per_sec(cores: usize, cost: &HostCostModel) -> f64 {
        let tuples_per_packet = 24.0;
        let pps_per_core = 1e9 / cost.dpdk_packet_ns;
        let wire_bits = (24.0 * 8.0 + 78.0) * 8.0;
        let line_rate_tuples = cost.nic_bps / wire_bits * tuples_per_packet;
        (cores as f64 * pps_per_core * tuples_per_packet).min(line_rate_tuples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> WordCountJob {
        WordCountJob::figure10(50_000_000)
    }

    fn engine() -> MiniSpark {
        MiniSpark::new(HostCostModel::testbed(), 32)
    }

    #[test]
    fn ask_beats_all_spark_variants() {
        let e = engine();
        let j = job();
        let ask = e.run(
            &j,
            Engine::Ask {
                switch_absorption: 0.9,
            },
        );
        for variant in [Engine::SparkVanilla, Engine::SparkShm, Engine::SparkRdma] {
            let s = e.run(&j, variant);
            assert!(
                ask.jct < s.jct,
                "ASK {:?} vs {variant:?} {:?}",
                ask.jct,
                s.jct
            );
        }
    }

    #[test]
    fn jct_reduction_in_paper_band() {
        // Paper: 67.3%–75.1% JCT reduction vs all baselines (§5.5).
        let e = engine();
        let j = job();
        let ask = e
            .run(
                &j,
                Engine::Ask {
                    switch_absorption: 0.9,
                },
            )
            .jct;
        let vanilla = e.run(&j, Engine::SparkVanilla).jct;
        let reduction = 1.0 - ask / vanilla;
        assert!(
            (0.5..0.9).contains(&reduction),
            "JCT reduction {reduction} out of band"
        );
    }

    #[test]
    fn shm_and_rdma_barely_help() {
        // §5.5 observation 1: after the combiner, intermediate data is
        // small, so faster shuffle paths do not change JCT much.
        let e = engine();
        let j = job();
        let vanilla = e.run(&j, Engine::SparkVanilla).jct;
        let shm = e.run(&j, Engine::SparkShm).jct;
        let rdma = e.run(&j, Engine::SparkRdma).jct;
        assert!(shm <= vanilla && rdma <= vanilla);
        assert!(vanilla / rdma < 1.3, "shuffle acceleration alone is <30%");
    }

    #[test]
    fn ask_mappers_are_order_of_magnitude_faster() {
        // Figure 11: mapper TCT mean 1.67 s (ASK) vs 15.89–17.67 s (others).
        let e = engine();
        let j = job();
        let ask = e.run(
            &j,
            Engine::Ask {
                switch_absorption: 0.9,
            },
        );
        let vanilla = e.run(&j, Engine::SparkVanilla);
        assert!(
            vanilla.mapper_tct / ask.mapper_tct > 4.0,
            "{} vs {}",
            vanilla.mapper_tct,
            ask.mapper_tct
        );
        // And ASK reducers are *not* faster (they absorb co-located data).
        assert!(ask.reducer_tct > 0.0);
    }

    #[test]
    fn ask_saves_cpu() {
        let e = engine();
        let j = job();
        let ask = e.run(
            &j,
            Engine::Ask {
                switch_absorption: 0.9,
            },
        );
        let vanilla = e.run(&j, Engine::SparkVanilla);
        assert!(ask.cpu_core_seconds < vanilla.cpu_core_seconds / 2.0);
    }

    #[test]
    fn jct_scales_with_volume() {
        let e = engine();
        let small = e.run(&WordCountJob::figure10(50_000_000), Engine::SparkVanilla);
        let large = e.run(&WordCountJob::figure10(200_000_000), Engine::SparkVanilla);
        assert!(large.jct > small.jct * 2.0);
    }

    #[test]
    fn akv_models_have_paper_shape() {
        use super::akv::*;
        let cost = HostCostModel::testbed();
        // Strawman reaches line rate with ~16 cores; Spark never does.
        let straw16 = strawman_akv_per_sec(16, &cost);
        let line = cost.nic_bps / (86.0 * 8.0);
        assert!((straw16 - line).abs() / line < 0.01);
        assert!(spark_akv_per_sec(56) < line / 3.0);
        // Strawman beats Spark at equal cores; full ASK beats both by far.
        assert!(straw16 > spark_akv_per_sec(16) * 3.0);
        let ask4 = ask_akv_per_sec(4, &cost);
        assert!(
            ask4 / spark_akv_per_sec(4) > 50.0,
            "got {}",
            ask4 / spark_akv_per_sec(4)
        );
        // Monotone in cores.
        assert!(spark_akv_per_sec(32) > spark_akv_per_sec(8));
    }

    #[test]
    #[should_panic(expected = "absorption")]
    fn bad_absorption_rejected() {
        engine().run(
            &job(),
            Engine::Ask {
                switch_absorption: 1.5,
            },
        );
    }
}
