//! Shared host-side cost constants for the analytic baselines.
//!
//! Every constant is a per-operation cost on the paper's testbed class of
//! machine (56-core Xeon Gold 5120T, 100 Gbps ConnectX-5). They are
//! calibration knobs, not measurements: the benchmark harness only relies
//! on their *relative* magnitudes (JVM-based aggregation ≫ DPDK packet IO ≫
//! hash-merge), which is what determines the shapes of Figures 3, 7, 10
//! and 11.

/// Cost model of a host participating in aggregation jobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostCostModel {
    /// Per-tuple cost of a map task *emitting* a tuple (generation only).
    pub map_emit_ns: f64,
    /// Per-tuple cost of sort-based local pre-aggregation (the PreAggr and
    /// Spark combiner path: sort + neighbor merge, cache-unfriendly).
    pub preagg_ns: f64,
    /// Per-tuple cost of hash-merging into an in-memory table (reducers,
    /// and the ASK daemon's residual aggregation).
    pub reduce_merge_ns: f64,
    /// Per-tuple cost inside a JVM-based engine (Spark's reduce path:
    /// deserialization + boxing + hash merge).
    pub jvm_merge_ns: f64,
    /// Per-packet cost of kernel-bypass (DPDK) packet IO.
    pub dpdk_packet_ns: f64,
    /// Per-task scheduling/launch overhead of the big-data framework.
    pub task_overhead_s: f64,
    /// Sequential disk write bandwidth (shuffle spill), bytes/s.
    pub disk_write_bps: f64,
    /// Sequential disk read bandwidth (shuffle fetch), bytes/s.
    pub disk_read_bps: f64,
    /// Effective TCP throughput per host of the vanilla engine, bits/s.
    pub tcp_bps: f64,
    /// Effective RDMA throughput per host (SparkRDMA), bits/s.
    pub rdma_bps: f64,
    /// NIC line rate, bits/s.
    pub nic_bps: f64,
}

impl HostCostModel {
    /// Defaults for the paper's testbed class.
    pub fn testbed() -> Self {
        HostCostModel {
            map_emit_ns: 30.0,
            preagg_ns: 220.0,
            reduce_merge_ns: 25.0,
            jvm_merge_ns: 550.0,
            dpdk_packet_ns: 110.0,
            task_overhead_s: 0.4,
            disk_write_bps: 0.5e9,
            disk_read_bps: 1.0e9,
            tcp_bps: 25e9,
            rdma_bps: 90e9,
            nic_bps: 100e9,
        }
    }

    /// Seconds for `tuples` tuples at `ns_per_tuple` on one core.
    pub fn tuple_seconds(tuples: u64, ns_per_tuple: f64) -> f64 {
        tuples as f64 * ns_per_tuple * 1e-9
    }

    /// Seconds to move `bytes` at `bps`.
    pub fn transfer_seconds(bytes: u64, bps: f64) -> f64 {
        bytes as f64 * 8.0 / bps
    }
}

impl Default for HostCostModel {
    fn default() -> Self {
        HostCostModel::testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_magnitudes_hold() {
        let m = HostCostModel::testbed();
        assert!(m.jvm_merge_ns > m.preagg_ns);
        assert!(m.preagg_ns > m.reduce_merge_ns);
        assert!(m.dpdk_packet_ns < 1000.0);
        assert!(m.rdma_bps > m.tcp_bps);
        assert!(m.nic_bps >= m.rdma_bps);
    }

    #[test]
    fn helpers_compute() {
        assert!((HostCostModel::tuple_seconds(1_000_000_000, 25.0) - 25.0).abs() < 1e-9);
        assert!((HostCostModel::transfer_seconds(125_000_000, 1e9) - 1.0).abs() < 1e-12);
    }
}
