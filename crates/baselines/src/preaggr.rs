//! PreAggr: the host-only aggregation baseline of §5.2.1 (Figure 7).
//!
//! Each sender sorts its key-value tuples and merges neighbours with equal
//! keys (classic combiner), then ships the compacted result to the
//! receiver, which merges the per-sender tables. All work burns host CPU;
//! the network time is negligible after compaction — exactly the regime the
//! paper describes ("mappers' local aggregation reduces data volume
//! significantly ... the network transmission time is negligible").

use crate::cost::HostCostModel;
use ask_simnet::cpu::{work_for_items, CpuPool};
use ask_simnet::time::SimTime;

/// Outcome of one PreAggr job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreAggrReport {
    /// Job completion time, seconds.
    pub jct: f64,
    /// Mean CPU utilization of the sending host over the job, `[0, 1]`.
    pub sender_cpu_utilization: f64,
    /// Total CPU core-seconds burned on the sender.
    pub sender_cpu_core_seconds: f64,
}

/// Models a PreAggr run: `total_tuples` uniform over `distinct_keys`,
/// aggregated by `threads` mapper/reducer thread pairs on `cores`-core
/// hosts connected at `nic_bps`.
///
/// # Panics
///
/// Panics if `threads == 0` or `cores == 0`.
pub fn run_preaggr(
    cost: &HostCostModel,
    total_tuples: u64,
    distinct_keys: u64,
    threads: usize,
    cores: usize,
) -> PreAggrReport {
    assert!(threads > 0, "need at least one thread");
    assert!(cores > 0, "need at least one core");

    // Sender: generate + sort-merge every tuple, one shard per thread,
    // scheduled on the host's core pool (threads beyond the core count
    // queue behind earlier shards, exactly like a real thread pool).
    let per_tuple_rate = 1e9 / (cost.map_emit_ns + cost.preagg_ns);
    let mut pool = CpuPool::new(cores);
    let shard = total_tuples / threads as u64;
    let mut sender_done = SimTime::ZERO;
    for t in 0..threads as u64 {
        let tuples = if t == threads as u64 - 1 {
            total_tuples - shard * (threads as u64 - 1)
        } else {
            shard
        };
        let finish = pool.run(SimTime::ZERO, work_for_items(tuples, per_tuple_rate));
        sender_done = sender_done.max(finish);
    }
    let sender_cpu = pool.busy_total().as_secs_f64();
    let sender_wall = sender_done.as_secs_f64();

    // Network: compacted table only.
    let table_bytes = distinct_keys.min(total_tuples) * 8;
    let net = HostCostModel::transfer_seconds(table_bytes, cost.tcp_bps);

    // Receiver: merge the compacted tables (same thread-pool shape).
    let merge_rate = 1e9 / cost.jvm_merge_ns;
    let mut recv_pool = CpuPool::new(cores);
    let merge_tuples = distinct_keys.min(total_tuples);
    let recv_shard = merge_tuples / threads as u64;
    let mut recv_done = SimTime::ZERO;
    for t in 0..threads as u64 {
        let tuples = if t == threads as u64 - 1 {
            merge_tuples - recv_shard * (threads as u64 - 1)
        } else {
            recv_shard
        };
        let finish = recv_pool.run(SimTime::ZERO, work_for_items(tuples, merge_rate));
        recv_done = recv_done.max(finish);
    }
    let recv_wall = recv_done.as_secs_f64();

    let jct = sender_wall + net + recv_wall;
    PreAggrReport {
        jct,
        sender_cpu_utilization: (sender_cpu / (jct * cores as f64)).min(1.0),
        sender_cpu_core_seconds: sender_cpu,
    }
}

/// Models the ASK side of Figure 7 analytically for cross-checks: the
/// daemon only pays packet IO, so JCT is NIC- or PPS-bound, whichever is
/// slower. (The benchmark harness measures the real `ask` stack instead;
/// this closed form documents the expected scaling.)
pub fn ask_expected_jct(
    cost: &HostCostModel,
    total_tuples: u64,
    data_channels: usize,
    tuples_per_packet: f64,
) -> f64 {
    assert!(data_channels > 0, "need at least one channel");
    let packets = total_tuples as f64 / tuples_per_packet;
    let pps_bound = packets * cost.dpdk_packet_ns * 1e-9 / data_channels as f64;
    let wire_bytes = total_tuples as f64 * (8.0 + 78.0 / tuples_per_packet);
    let nic_bound = wire_bytes * 8.0 / cost.nic_bps;
    pps_bound.max(nic_bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TUPLES: u64 = 6_400_000_000; // 51.2 GB of 8-byte tuples (§5.2.1)
    const KEYS: u64 = 32_000_000; // → 256 MB intermediate results

    #[test]
    fn more_threads_shrink_jct_until_cores_saturate() {
        let c = HostCostModel::testbed();
        let j8 = run_preaggr(&c, TUPLES, KEYS, 8, 56).jct;
        let j32 = run_preaggr(&c, TUPLES, KEYS, 32, 56).jct;
        let j56 = run_preaggr(&c, TUPLES, KEYS, 56, 56).jct;
        let j64 = run_preaggr(&c, TUPLES, KEYS, 64, 56).jct;
        assert!(j8 > j32 && j32 > j56);
        // Beyond the core count there is no speedup — in fact 64 shards on
        // 56 cores straggle (8 cores run two shards back to back).
        assert!(j64 >= j56, "oversubscription cannot be faster");
    }

    #[test]
    fn paper_band_for_jct() {
        // Paper: PreAggr spends 111.20 s with 8 threads, 33.22 s with 32.
        let c = HostCostModel::testbed();
        let j8 = run_preaggr(&c, TUPLES, KEYS, 8, 56).jct;
        let j32 = run_preaggr(&c, TUPLES, KEYS, 32, 56).jct;
        assert!((60.0..250.0).contains(&j8), "8 threads: {j8}");
        assert!((15.0..70.0).contains(&j32), "32 threads: {j32}");
        assert!((2.5..4.5).contains(&(j8 / j32)), "ratio {}", j8 / j32);
    }

    #[test]
    fn ask_is_an_order_of_magnitude_faster_with_less_cpu() {
        // Paper: ASK ≈ 16 s with 1 channel, ≈ 6 s with 4.
        let c = HostCostModel::testbed();
        let ask1 = ask_expected_jct(&c, TUPLES, 1, 24.0);
        let ask4 = ask_expected_jct(&c, TUPLES, 4, 24.0);
        let pre8 = run_preaggr(&c, TUPLES, KEYS, 8, 56).jct;
        assert!(ask1 < pre8 / 2.0, "ask1={ask1} pre8={pre8}");
        assert!(ask4 < ask1, "more channels help until NIC-bound");
        assert!(ask4 > 3.0, "NIC floor: 51.2 GB + overhead at 100 Gbps");
    }

    #[test]
    fn cpu_utilization_grows_with_threads() {
        let c = HostCostModel::testbed();
        let u8 = run_preaggr(&c, TUPLES, KEYS, 8, 56).sender_cpu_utilization;
        let u56 = run_preaggr(&c, TUPLES, KEYS, 56, 56).sender_cpu_utilization;
        assert!(u8 < u56);
        assert!(u56 <= 1.0);
    }
}
