//! Distributed-training throughput models: ASK-BytePS, ATP, SwitchML, and a
//! no-INA parameter-server baseline (Figure 12 and §5.6).
//!
//! One training iteration overlaps GPU compute with gradient
//! synchronization; the iteration time is `max(compute, comm) +
//! (1 − overlap) · min(compute, comm)`. All three INA systems aggregate
//! gradients at line rate in the switch, so the only difference between
//! them is *wire efficiency* — how many payload bytes each puts on the wire
//! per gradient element:
//!
//! - **ASK** (value-stream mode): the BytePS plugin packs one base index
//!   per packet of contiguous values (§2.2.2's value-stream property), so
//!   ≈ 4 B/element at the paper's 256 B payload / 78 B overhead framing.
//! - **ATP**: the same 4 B/element with a comparable header.
//! - **SwitchML**: fixed small packets (its design point), modelled as a
//!   128 B payload per 78 B overhead — the paper's "small packet size
//!   cannot fully utilize the network bandwidth".
//! - **PS (no INA)**: every worker's gradients cross the parameter server's
//!   single link, so communication scales with the worker count.

use ask_workloads::models::ModelSpec;

/// A gradient-synchronization system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainingSystem {
    /// ASK integrated with BytePS (this paper).
    AskBytePs,
    /// ATP (NSDI'21), synchronous INA.
    Atp,
    /// SwitchML (NSDI'21), synchronous INA with small packets.
    SwitchMl,
    /// BytePS parameter server without in-network aggregation.
    PsNoIna,
}

impl TrainingSystem {
    /// Wire bytes per 4-byte gradient element, including per-packet
    /// overhead amortization.
    fn wire_bytes_per_element(self) -> f64 {
        match self {
            // 256 B of values per 78 B overhead, one 8 B index per packet.
            TrainingSystem::AskBytePs => 4.0 * (256.0 + 78.0 + 8.0) / 256.0,
            TrainingSystem::Atp => 4.0 * (256.0 + 78.0) / 256.0,
            // 128 B of values per 78 B overhead.
            TrainingSystem::SwitchMl => 4.0 * (128.0 + 78.0) / 128.0,
            TrainingSystem::PsNoIna => 4.0 * (256.0 + 78.0) / 256.0,
        }
    }
}

/// Cluster and overlap parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingConfig {
    /// Worker hosts (each with one GPU).
    pub workers: usize,
    /// NIC line rate, bits/s.
    pub nic_bps: f64,
    /// Fraction of communication hidden behind backward compute, `[0, 1]`.
    pub overlap: f64,
}

impl TrainingConfig {
    /// The paper's testbed: 8 workers on 100 Gbps with good overlap.
    pub fn paper_testbed() -> Self {
        TrainingConfig {
            workers: 8,
            nic_bps: 100e9,
            overlap: 0.8,
        }
    }
}

/// Training throughput in images per second for `model` under `system`.
///
/// # Panics
///
/// Panics if the config has no workers or `overlap` is out of `[0, 1]`.
pub fn images_per_sec(model: &ModelSpec, system: TrainingSystem, cfg: &TrainingConfig) -> f64 {
    assert!(cfg.workers > 0, "need at least one worker");
    assert!((0.0..=1.0).contains(&cfg.overlap), "overlap is a fraction");
    let compute = model.compute_seconds_per_iteration();
    let wire_bytes = model.parameters as f64 / 4.0 * 4.0 * system.wire_bytes_per_element();
    let incast = match system {
        // The PS's single link carries every worker's gradients (and the
        // broadcast back), so it serializes the whole cluster's volume.
        TrainingSystem::PsNoIna => cfg.workers as f64,
        _ => 1.0,
    };
    let comm = wire_bytes * incast * 8.0 / cfg.nic_bps;
    let (hi, lo) = if compute >= comm {
        (compute, comm)
    } else {
        (comm, compute)
    };
    let iter = hi + (1.0 - cfg.overlap) * lo;
    cfg.workers as f64 * model.batch_size as f64 / iter
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TrainingConfig {
        TrainingConfig::paper_testbed()
    }

    #[test]
    fn ina_systems_are_similar() {
        // Figure 12: ASK, ATP, SwitchML within a few percent of each other.
        for model in ModelSpec::paper_models() {
            let ask = images_per_sec(&model, TrainingSystem::AskBytePs, &cfg());
            let atp = images_per_sec(&model, TrainingSystem::Atp, &cfg());
            let sml = images_per_sec(&model, TrainingSystem::SwitchMl, &cfg());
            assert!(
                (ask / atp - 1.0).abs() < 0.05,
                "{}: ask {ask} atp {atp}",
                model.name
            );
            assert!(
                ask / sml >= 0.999,
                "{}: ASK never loses to SwitchML",
                model.name
            );
            assert!(ask / sml < 1.4, "{}: but the edge is modest", model.name);
        }
    }

    #[test]
    fn ask_edge_is_larger_on_communication_bound_models() {
        let edge = |m: &ModelSpec| {
            images_per_sec(m, TrainingSystem::AskBytePs, &cfg())
                / images_per_sec(m, TrainingSystem::SwitchMl, &cfg())
        };
        let vgg = ModelSpec::vgg16();
        let resnet = ModelSpec::resnet50();
        assert!(
            edge(&vgg) >= edge(&resnet),
            "VGG (comm-heavy) benefits at least as much: {} vs {}",
            edge(&vgg),
            edge(&resnet)
        );
    }

    #[test]
    fn ina_beats_plain_parameter_server() {
        for model in ModelSpec::paper_models() {
            let ask = images_per_sec(&model, TrainingSystem::AskBytePs, &cfg());
            let ps = images_per_sec(&model, TrainingSystem::PsNoIna, &cfg());
            assert!(ask > ps, "{}: {ask} vs {ps}", model.name);
        }
        // And the gap is dramatic for the VGGs (large gradients).
        let vgg = ModelSpec::vgg19();
        let ask = images_per_sec(&vgg, TrainingSystem::AskBytePs, &cfg());
        let ps = images_per_sec(&vgg, TrainingSystem::PsNoIna, &cfg());
        assert!(ask / ps > 1.5, "VGG19 INA speedup {}", ask / ps);
    }

    #[test]
    fn throughput_scales_with_workers_for_ina() {
        let m = ModelSpec::resnet50();
        let mut c = cfg();
        c.workers = 4;
        let four = images_per_sec(&m, TrainingSystem::AskBytePs, &c);
        c.workers = 8;
        let eight = images_per_sec(&m, TrainingSystem::AskBytePs, &c);
        assert!((eight / four - 2.0).abs() < 0.01, "INA scales linearly");
    }

    #[test]
    fn absolute_numbers_are_plausible() {
        // 8 × 2080 Ti on ResNet-50 lands in the low thousands of images/s.
        let r = images_per_sec(&ModelSpec::resnet50(), TrainingSystem::AskBytePs, &cfg());
        assert!((1000.0..4000.0).contains(&r), "got {r}");
    }

    #[test]
    #[should_panic(expected = "worker")]
    fn zero_workers_rejected() {
        let mut c = cfg();
        c.workers = 0;
        images_per_sec(&ModelSpec::resnet50(), TrainingSystem::Atp, &c);
    }
}
