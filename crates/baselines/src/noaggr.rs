//! NoAggr: pure DPDK-style network transmission with host-side aggregation
//! at the receiver — the overhead/scalability baseline of §5.7.
//!
//! Senders blast MTU-sized packets of raw key-value tuples through the
//! switch to one receiver; the switch only forwards. The receiver's inbound
//! link is the shared bottleneck, which is what makes NoAggr's per-sender
//! throughput collapse as `1/n` in Figure 13(b) while ASK's stays flat.

use ask_simnet::frame::{Frame, NodeId};
use ask_simnet::link::LinkConfig;
use ask_simnet::network::{Context, Network, NetworkBuilder, Node};
use ask_simnet::time::{SimDuration, SimTime};
use bytes::Bytes;

/// Standard Ethernet MTU payload available to tuples after headers.
const MTU_PAYLOAD: usize = 1500 - 40;
/// Physical overhead per MTU frame (framing + Ethernet + IP headers).
const FRAME_OVERHEAD: usize = 78;

/// A node that transmits `bytes_to_send` of raw tuple payload as fast as
/// its per-packet CPU cost allows.
#[derive(Debug)]
struct Blaster {
    receiver: NodeId,
    switch: NodeId,
    bytes_left: u64,
    cpu_per_packet: SimDuration,
    payload_sent: u64,
    done_at: Option<SimTime>,
}

impl Node for Blaster {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(SimDuration::ZERO, 0);
    }
    fn on_frame(&mut self, _: NodeId, _: Frame, _: &mut Context<'_>) {}
    fn on_timer(&mut self, _token: u64, ctx: &mut Context<'_>) {
        if self.bytes_left == 0 {
            return;
        }
        let chunk = (self.bytes_left as usize).min(MTU_PAYLOAD);
        self.bytes_left -= chunk as u64;
        self.payload_sent += chunk as u64;
        // Encode the destination in the first 4 bytes for the dumb switch.
        let mut body = vec![0u8; chunk.max(4)];
        body[..4].copy_from_slice(&(self.receiver.index() as u32).to_be_bytes());
        let frame = Frame::with_wire_bytes(Bytes::from(body), chunk + FRAME_OVERHEAD);
        let _ = ctx.send(self.switch, frame);
        if self.bytes_left > 0 {
            ctx.set_timer(self.cpu_per_packet, 0);
        } else {
            self.done_at = Some(ctx.now() + self.cpu_per_packet);
        }
    }
}

/// A switch that forwards every frame to the destination in its first four
/// payload bytes.
#[derive(Debug, Default)]
struct DumbSwitch;

impl Node for DumbSwitch {
    fn on_frame(&mut self, _from: NodeId, frame: Frame, ctx: &mut Context<'_>) {
        let payload = frame.payload();
        if payload.len() < 4 {
            return;
        }
        let dst = u32::from_be_bytes([payload[0], payload[1], payload[2], payload[3]]);
        let _ = ctx.send(NodeId::from_index(dst as usize), frame.clone());
    }
}

/// The receiving host: counts payload bytes and tracks the last arrival.
#[derive(Debug, Default)]
struct Sink {
    payload_received: u64,
    last_arrival: SimTime,
}

impl Node for Sink {
    fn on_frame(&mut self, _: NodeId, frame: Frame, ctx: &mut Context<'_>) {
        self.payload_received += (frame.wire_bytes() - FRAME_OVERHEAD) as u64;
        self.last_arrival = ctx.now();
    }
}

/// Result of one NoAggr run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoAggrReport {
    /// Mean per-sender *goodput* (payload bits/s) over the run.
    pub per_sender_goodput_bps: f64,
    /// Aggregate wire throughput into the receiver (bits/s).
    pub receiver_wire_bps: f64,
    /// Wall-clock of the transfer (s).
    pub elapsed_s: f64,
}

/// Runs `senders` hosts each pushing `bytes_per_sender` of raw tuples to
/// one receiver over `link`-configured access links.
///
/// # Panics
///
/// Panics if `senders == 0` or `bytes_per_sender == 0`.
pub fn run_noaggr(
    senders: usize,
    bytes_per_sender: u64,
    link: LinkConfig,
    cpu_per_packet: SimDuration,
) -> NoAggrReport {
    assert!(senders > 0, "need at least one sender");
    assert!(bytes_per_sender > 0, "need some payload");
    let mut b = NetworkBuilder::new(7);
    let switch = b.add_node(DumbSwitch);
    let sink = b.add_node(Sink::default());
    b.connect(sink, switch, link.clone());
    let blasters: Vec<NodeId> = (0..senders)
        .map(|_| {
            let id = b.add_node(Blaster {
                receiver: sink,
                switch,
                bytes_left: bytes_per_sender,
                cpu_per_packet,
                payload_sent: 0,
                done_at: None,
            });
            b.connect(id, switch, link.clone());
            id
        })
        .collect();
    let mut net: Network = b.build();
    net.run_to_idle();

    let elapsed = net.node::<Sink>(sink).last_arrival.as_secs_f64();
    let received = net.node::<Sink>(sink).payload_received;
    let wire_in = net.link_stats(switch, sink);
    let per_sender = if elapsed == 0.0 {
        0.0
    } else {
        received as f64 * 8.0 / elapsed / blasters.len() as f64
    };
    NoAggrReport {
        per_sender_goodput_bps: per_sender,
        receiver_wire_bps: wire_in.throughput_bps(ask_simnet::time::SimDuration::from_secs_f64(
            elapsed.max(1e-12),
        )),
        elapsed_s: elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> LinkConfig {
        LinkConfig::new(100e9, SimDuration::from_micros(1))
    }

    #[test]
    fn single_sender_approaches_line_rate() {
        let r = run_noaggr(1, 50_000_000, link(), SimDuration::from_nanos(100));
        // 1460-byte payload per 1538 wire bytes ≈ 95% goodput.
        assert!(
            r.per_sender_goodput_bps > 85e9,
            "got {} Gbps",
            r.per_sender_goodput_bps / 1e9
        );
    }

    #[test]
    fn per_sender_throughput_inversely_proportional_to_senders() {
        let one = run_noaggr(1, 20_000_000, link(), SimDuration::from_nanos(100));
        let four = run_noaggr(4, 20_000_000, link(), SimDuration::from_nanos(100));
        let eight = run_noaggr(8, 20_000_000, link(), SimDuration::from_nanos(100));
        let r4 = one.per_sender_goodput_bps / four.per_sender_goodput_bps;
        let r8 = one.per_sender_goodput_bps / eight.per_sender_goodput_bps;
        assert!((3.3..5.0).contains(&r4), "4 senders ratio {r4}");
        assert!((6.5..10.0).contains(&r8), "8 senders ratio {r8}");
    }

    #[test]
    fn slow_cpu_bounds_throughput_below_line_rate() {
        // 10 µs per packet → ~146 Mbit/s regardless of the 100 Gbps link.
        let r = run_noaggr(1, 5_000_000, link(), SimDuration::from_micros(10));
        assert!(r.per_sender_goodput_bps < 2e9);
    }

    #[test]
    #[should_panic(expected = "at least one sender")]
    fn zero_senders_rejected() {
        run_noaggr(0, 1, link(), SimDuration::ZERO);
    }
}
