//! Workload statistics: the properties of a key-value stream that determine
//! how well ASK will aggregate it (distinct keys, frequency skew, key-class
//! mix). Used to characterize synthetic traces against the paper's
//! descriptions and to sanity-check generator calibration.

use ask_wire::key::{Key, KeyClass};
use ask_wire::packet::KvTuple;
use std::collections::HashMap;

/// Summary statistics of a key-value stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamProfile {
    /// Total tuples.
    pub tuples: u64,
    /// Distinct keys.
    pub distinct: u64,
    /// Fraction of tuples whose key appears exactly once (pure cold tail).
    pub singleton_fraction: f64,
    /// Fraction of tuples carried by the top 1% most frequent keys.
    pub top1pct_mass: f64,
    /// Least-squares Zipf exponent fit on the log rank–frequency curve.
    pub zipf_exponent: f64,
    /// Tuple fractions per key class `(short, medium, long)` for `m = 2`.
    pub class_mix: (f64, f64, f64),
    /// Mean key length in bytes.
    pub mean_key_len: f64,
}

/// Profiles a stream.
///
/// # Panics
///
/// Panics if the stream is empty.
pub fn profile(stream: &[KvTuple]) -> StreamProfile {
    assert!(!stream.is_empty(), "cannot profile an empty stream");
    let mut counts: HashMap<&Key, u64> = HashMap::new();
    let mut len_sum = 0u64;
    let mut class = [0u64; 3];
    for t in stream {
        *counts.entry(&t.key).or_insert(0) += 1;
        len_sum += t.key.len() as u64;
        match t.key.class(2) {
            KeyClass::Short => class[0] += 1,
            KeyClass::Medium => class[1] += 1,
            KeyClass::Long => class[2] += 1,
        }
    }
    let tuples = stream.len() as u64;
    let mut freqs: Vec<u64> = counts.values().copied().collect();
    freqs.sort_unstable_by(|a, b| b.cmp(a));

    let singletons = freqs.iter().filter(|&&c| c == 1).count() as u64;
    let top = (freqs.len().div_ceil(100)).max(1);
    let top_mass: u64 = freqs.iter().take(top).sum();

    // Zipf fit: regress log(freq) on log(rank+1) over the non-singleton
    // head (the tail is quantized at 1 and would bias the slope).
    let head: Vec<(f64, f64)> = freqs
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 1)
        .map(|(r, &c)| (((r + 1) as f64).ln(), (c as f64).ln()))
        .collect();
    let zipf_exponent = if head.len() < 2 {
        0.0
    } else {
        let n = head.len() as f64;
        let sx: f64 = head.iter().map(|(x, _)| x).sum();
        let sy: f64 = head.iter().map(|(_, y)| y).sum();
        let sxx: f64 = head.iter().map(|(x, _)| x * x).sum();
        let sxy: f64 = head.iter().map(|(x, y)| x * y).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            0.0
        } else {
            -((n * sxy - sx * sy) / denom)
        }
    };

    StreamProfile {
        tuples,
        distinct: freqs.len() as u64,
        singleton_fraction: singletons as f64 / tuples as f64,
        top1pct_mass: top_mass as f64 / tuples as f64,
        zipf_exponent,
        class_mix: (
            class[0] as f64 / tuples as f64,
            class[1] as f64 / tuples as f64,
            class[2] as f64 / tuples as f64,
        ),
        mean_key_len: len_sum as f64 / tuples as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::{uniform_stream, TextCorpus};
    use crate::zipf::{zipf_stream, StreamOrder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_profile_is_flat() {
        let p = profile(&uniform_stream(1, 100, 50_000));
        assert_eq!(p.distinct, 100);
        assert!(p.zipf_exponent.abs() < 0.25, "got {}", p.zipf_exponent);
        assert!(p.top1pct_mass < 0.05);
        assert_eq!(p.singleton_fraction, 0.0);
    }

    #[test]
    fn zipf_exponent_recovered() {
        let mut rng = StdRng::seed_from_u64(4);
        for s in [0.8f64, 1.0, 1.2] {
            let ranks = zipf_stream(&mut rng, 5_000, 200_000, s, StreamOrder::Shuffled);
            let stream: Vec<KvTuple> = ranks
                .iter()
                .map(|&r| KvTuple::new(Key::from_u64(r), 1))
                .collect();
            let p = profile(&stream);
            assert!(
                (p.zipf_exponent - s).abs() < 0.2,
                "target {s}, fitted {}",
                p.zipf_exponent
            );
        }
    }

    #[test]
    fn corpora_match_their_declared_skew() {
        for corpus in TextCorpus::paper_datasets() {
            let p = profile(&corpus.stream(5, 150_000));
            assert!(
                (p.zipf_exponent - corpus.zipf_s).abs() < 0.3,
                "{}: declared {}, fitted {}",
                corpus.name,
                corpus.zipf_s,
                p.zipf_exponent
            );
            let (s, m, l) = p.class_mix;
            assert!((s + m + l - 1.0).abs() < 1e-9);
            assert!(
                s > 0.0 && m > 0.0 && l > 0.0,
                "{}: all classes",
                corpus.name
            );
        }
    }

    #[test]
    fn skewed_head_carries_mass() {
        let mut rng = StdRng::seed_from_u64(9);
        let ranks = zipf_stream(&mut rng, 10_000, 100_000, 1.2, StreamOrder::Shuffled);
        let stream: Vec<KvTuple> = ranks
            .iter()
            .map(|&r| KvTuple::new(Key::from_u64(r), 1))
            .collect();
        let p = profile(&stream);
        assert!(p.top1pct_mass > 0.4, "got {}", p.top1pct_mass);
        assert!(p.singleton_fraction > 0.0, "the tail has singletons");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_stream_rejected() {
        let _ = profile(&[]);
    }
}
