//! Deep-learning model descriptions for the distributed-training
//! experiments (Figure 12).
//!
//! The paper trains ResNet-50/101/152 and VGG-11/16/19 on ImageNet with one
//! RTX 2080 Ti per worker. For the reproduction we need two numbers per
//! model: the gradient volume exchanged per iteration (the parameter count)
//! and the per-GPU compute throughput (images/s without any communication),
//! both taken from the models' well-known published characteristics.

/// One trainable model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelSpec {
    /// Display name.
    pub name: &'static str,
    /// Trainable parameters (gradient elements per iteration).
    pub parameters: u64,
    /// Single-GPU training throughput in images/s on an RTX 2080 Ti-class
    /// accelerator (compute only, fp32).
    pub gpu_images_per_sec: f64,
    /// Per-worker minibatch size.
    pub batch_size: u64,
}

impl ModelSpec {
    /// ResNet-50 (25.6 M parameters).
    pub fn resnet50() -> Self {
        ModelSpec {
            name: "ResNet50",
            parameters: 25_557_032,
            gpu_images_per_sec: 300.0,
            batch_size: 64,
        }
    }

    /// ResNet-101 (44.5 M parameters).
    pub fn resnet101() -> Self {
        ModelSpec {
            name: "ResNet101",
            parameters: 44_549_160,
            gpu_images_per_sec: 180.0,
            batch_size: 64,
        }
    }

    /// ResNet-152 (60.2 M parameters).
    pub fn resnet152() -> Self {
        ModelSpec {
            name: "ResNet152",
            parameters: 60_192_808,
            gpu_images_per_sec: 125.0,
            batch_size: 64,
        }
    }

    /// VGG-11 (132.9 M parameters).
    pub fn vgg11() -> Self {
        ModelSpec {
            name: "VGG11",
            parameters: 132_863_336,
            gpu_images_per_sec: 380.0,
            batch_size: 64,
        }
    }

    /// VGG-16 (138.4 M parameters).
    pub fn vgg16() -> Self {
        ModelSpec {
            name: "VGG16",
            parameters: 138_357_544,
            gpu_images_per_sec: 240.0,
            batch_size: 64,
        }
    }

    /// VGG-19 (143.7 M parameters).
    pub fn vgg19() -> Self {
        ModelSpec {
            name: "VGG19",
            parameters: 143_667_240,
            gpu_images_per_sec: 200.0,
            batch_size: 64,
        }
    }

    /// The six models of Figure 12, in its order.
    pub fn paper_models() -> Vec<ModelSpec> {
        vec![
            ModelSpec::resnet50(),
            ModelSpec::resnet101(),
            ModelSpec::resnet152(),
            ModelSpec::vgg11(),
            ModelSpec::vgg16(),
            ModelSpec::vgg19(),
        ]
    }

    /// Gradient bytes exchanged per iteration (fp32).
    pub fn gradient_bytes(&self) -> u64 {
        self.parameters * 4
    }

    /// Seconds of pure GPU compute per iteration.
    pub fn compute_seconds_per_iteration(&self) -> f64 {
        self.batch_size as f64 / self.gpu_images_per_sec
    }

    /// Communication-to-computation intensity: gradient megabytes per second
    /// of compute. VGGs are far more communication-bound than ResNets, which
    /// is why INA helps them most.
    pub fn comm_intensity(&self) -> f64 {
        self.gradient_bytes() as f64 / 1e6 / self.compute_seconds_per_iteration()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_models_ordered_and_distinct() {
        let models = ModelSpec::paper_models();
        assert_eq!(models.len(), 6);
        let names: Vec<&str> = models.iter().map(|m| m.name).collect();
        assert_eq!(
            names,
            vec![
                "ResNet50",
                "ResNet101",
                "ResNet152",
                "VGG11",
                "VGG16",
                "VGG19"
            ]
        );
    }

    #[test]
    fn vggs_are_more_communication_bound() {
        assert!(ModelSpec::vgg16().comm_intensity() > ModelSpec::resnet50().comm_intensity());
        assert!(ModelSpec::vgg19().comm_intensity() > ModelSpec::resnet152().comm_intensity());
    }

    #[test]
    fn deeper_models_compute_slower() {
        assert!(
            ModelSpec::resnet152().gpu_images_per_sec < ModelSpec::resnet50().gpu_images_per_sec
        );
        assert!(ModelSpec::vgg19().gpu_images_per_sec < ModelSpec::vgg11().gpu_images_per_sec);
    }

    #[test]
    fn gradient_bytes_are_4x_params() {
        let m = ModelSpec::resnet50();
        assert_eq!(m.gradient_bytes(), m.parameters * 4);
    }
}
