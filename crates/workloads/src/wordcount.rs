//! WordCount job generators for the big-data experiments (§5.2, §5.5).
//!
//! A WordCount job has `mappers` map tasks per machine, each emitting
//! `(word, 1)` tuples over a bounded per-mapper keyspace, and reducers that
//! aggregate by key — the paper's Figure 10 setting is 3 machines × 32
//! mappers × 2¹⁸ distinct keys per mapper and 5–20 × 10⁷ tuples per mapper.

use ask_wire::key::Key;
use ask_wire::packet::KvTuple;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of one WordCount job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WordCountJob {
    /// Machines in the cluster.
    pub machines: usize,
    /// Map tasks per machine.
    pub mappers_per_machine: usize,
    /// Distinct keys each mapper draws from.
    pub distinct_keys_per_mapper: u64,
    /// Tuples each mapper emits.
    pub tuples_per_mapper: u64,
}

impl WordCountJob {
    /// Figure 10's cluster shape (tuple volume per mapper varies by column).
    pub fn figure10(tuples_per_mapper: u64) -> Self {
        WordCountJob {
            machines: 3,
            mappers_per_machine: 32,
            distinct_keys_per_mapper: 1 << 18,
            tuples_per_mapper,
        }
    }

    /// Total tuples emitted by the whole job.
    pub fn total_tuples(&self) -> u64 {
        self.machines as u64 * self.mappers_per_machine as u64 * self.tuples_per_mapper
    }

    /// Total map tasks.
    pub fn total_mappers(&self) -> usize {
        self.machines * self.mappers_per_machine
    }

    /// Generates mapper `m`'s output stream (uniform over its keyspace).
    ///
    /// All mappers share one global keyspace so that cross-mapper
    /// aggregation is meaningful (words repeat across mappers).
    pub fn mapper_stream(&self, seed: u64, mapper: usize) -> Vec<KvTuple> {
        let mut rng = StdRng::seed_from_u64(seed ^ (mapper as u64) << 32);
        (0..self.tuples_per_mapper)
            .map(|_| {
                KvTuple::new(
                    Key::from_u64(rng.gen_range(0..self.distinct_keys_per_mapper)),
                    1,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure10_shape() {
        let job = WordCountJob::figure10(50_000_000);
        assert_eq!(job.total_mappers(), 96);
        assert_eq!(job.total_tuples(), 96 * 50_000_000);
    }

    #[test]
    fn mapper_streams_are_deterministic_and_distinct() {
        let job = WordCountJob {
            machines: 1,
            mappers_per_machine: 2,
            distinct_keys_per_mapper: 100,
            tuples_per_mapper: 50,
        };
        assert_eq!(job.mapper_stream(1, 0), job.mapper_stream(1, 0));
        assert_ne!(job.mapper_stream(1, 0), job.mapper_stream(1, 1));
    }

    #[test]
    fn mapper_streams_share_keyspace() {
        let job = WordCountJob {
            machines: 1,
            mappers_per_machine: 2,
            distinct_keys_per_mapper: 10,
            tuples_per_mapper: 200,
        };
        let keys = |m: usize| -> std::collections::HashSet<Key> {
            job.mapper_stream(7, m).into_iter().map(|t| t.key).collect()
        };
        let inter: Vec<_> = keys(0).intersection(&keys(1)).cloned().collect();
        assert!(!inter.is_empty(), "mappers must overlap in keys");
    }
}
