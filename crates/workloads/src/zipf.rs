//! Exact bounded Zipf sampling and ordered Zipf streams (§5.4).
//!
//! The paper's hot-key prioritization study uses three arrangements of the
//! same Zipf-distributed multiset: *Zipf* (hot keys early in the stream),
//! *Zipf (reverse)* (cold keys early), and shuffled arrival. The sampler
//! here is exact — a precomputed CDF with binary search — so no external
//! distribution crate is needed.

use rand::Rng;

/// Samples ranks `0..n` with probability ∝ `1 / (rank + 1)^s`.
///
/// # Examples
///
/// ```
/// use ask_workloads::zipf::ZipfSampler;
/// use rand::{SeedableRng, rngs::StdRng};
///
/// let z = ZipfSampler::new(100, 1.0);
/// let mut rng = StdRng::seed_from_u64(1);
/// let r = z.sample(&mut rng);
/// assert!(r < 100);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative / not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(s.is_finite() && s >= 0.0, "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the sampler has no ranks (never, by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The probability of `rank`.
    pub fn probability(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Expected appearance counts for `total` draws (deterministic layout
    /// used by the ordered stream generators).
    pub fn expected_counts(&self, total: u64) -> Vec<u64> {
        let n = self.cdf.len();
        let mut counts = Vec::with_capacity(n);
        let mut assigned = 0u64;
        for rank in 0..n {
            let c = (self.probability(rank) * total as f64).round() as u64;
            counts.push(c);
            assigned += c;
        }
        // Nudge rank 0 so the total is exact.
        if assigned != total {
            let delta = total as i64 - assigned as i64;
            counts[0] = (counts[0] as i64 + delta).max(0) as u64;
        }
        counts
    }
}

/// Arrival order of the key multiset in a generated stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamOrder {
    /// Hot keys first — the paper's *Zipf dataset*.
    HotFirst,
    /// Cold keys first — the paper's *Zipf (reverse) dataset*.
    ColdFirst,
    /// Random interleaving (the realistic arrival process).
    Shuffled,
}

/// Generates a stream of `total` key ranks with the given skew and order.
///
/// `HotFirst`/`ColdFirst` sort the multiset by key frequency — every
/// appearance of the hottest (coldest) key first, then the next, and so on
/// — matching the paper's description of the *Zipf* / *Zipf (reverse)*
/// datasets where "hot keys appear in the front and the cold keys appear in
/// the rear" (§5.4). `Shuffled` draws i.i.d. samples (the realistic online
/// arrival process).
pub fn zipf_stream<R: Rng + ?Sized>(
    rng: &mut R,
    distinct: usize,
    total: u64,
    s: f64,
    order: StreamOrder,
) -> Vec<u64> {
    let sampler = ZipfSampler::new(distinct, s);
    match order {
        StreamOrder::Shuffled => (0..total).map(|_| sampler.sample(rng) as u64).collect(),
        StreamOrder::HotFirst | StreamOrder::ColdFirst => {
            let counts = sampler.expected_counts(total);
            let mut out = Vec::with_capacity(total as usize);
            let ranks: Vec<usize> = if order == StreamOrder::HotFirst {
                (0..distinct).collect()
            } else {
                (0..distinct).rev().collect()
            };
            for rank in ranks {
                for _ in 0..counts[rank] {
                    out.push(rank as u64);
                }
            }
            out.truncate(total as usize);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_sum_to_one() {
        let z = ZipfSampler::new(1000, 1.0);
        let sum: f64 = (0..1000).map(|r| z.probability(r)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(z.len(), 1000);
        assert!(!z.is_empty());
    }

    #[test]
    fn skew_monotonic() {
        let z = ZipfSampler::new(100, 1.2);
        for r in 1..100 {
            assert!(z.probability(r) <= z.probability(r - 1), "rank {r}");
        }
    }

    #[test]
    fn empirical_matches_theoretical() {
        let z = ZipfSampler::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let mut counts = vec![0u64; 50];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for r in [0usize, 1, 5, 20] {
            let emp = counts[r] as f64 / n as f64;
            let theo = z.probability(r);
            assert!(
                (emp - theo).abs() / theo < 0.1,
                "rank {r}: empirical {emp} vs {theo}"
            );
        }
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for r in 0..10 {
            assert!((z.probability(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn expected_counts_sum_exactly() {
        let z = ZipfSampler::new(100, 1.1);
        let counts = z.expected_counts(12_345);
        assert_eq!(counts.iter().sum::<u64>(), 12_345);
    }

    #[test]
    fn hot_first_puts_rank0_first() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = zipf_stream(&mut rng, 10, 100, 1.0, StreamOrder::HotFirst);
        assert_eq!(s.len(), 100);
        assert_eq!(s[0], 0, "hottest key appears first");
        // First appearance order is by rank.
        let mut seen = std::collections::HashSet::new();
        let firsts: Vec<u64> = s.iter().copied().filter(|k| seen.insert(*k)).collect();
        let mut sorted = firsts.clone();
        sorted.sort_unstable();
        assert_eq!(firsts, sorted);
    }

    #[test]
    fn cold_first_puts_tail_first() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = zipf_stream(&mut rng, 10, 100, 1.0, StreamOrder::ColdFirst);
        assert_eq!(s.len(), 100);
        let mut seen = std::collections::HashSet::new();
        let firsts: Vec<u64> = s.iter().copied().filter(|k| seen.insert(*k)).collect();
        let mut sorted = firsts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(firsts, sorted, "first appearances from coldest to hottest");
    }

    #[test]
    fn orders_are_permutations_of_same_multiset() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = zipf_stream(&mut rng, 20, 500, 1.0, StreamOrder::HotFirst);
        let b = zipf_stream(&mut rng, 20, 500, 1.0, StreamOrder::ColdFirst);
        let count = |v: &[u64]| {
            let mut c = std::collections::HashMap::new();
            for &k in v {
                *c.entry(k).or_insert(0u64) += 1;
            }
            c
        };
        assert_eq!(count(&a), count(&b));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_sampler_rejected() {
        let _ = ZipfSampler::new(0, 1.0);
    }
}
