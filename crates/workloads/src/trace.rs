//! Plain-text trace format for saving and replaying key-value streams.
//!
//! One tuple per line: the key hex-encoded, a space, the decimal value.
//! Hex keeps arbitrary key bytes printable without escaping rules.
//!
//! ```
//! use ask_workloads::trace::{parse_trace, render_trace};
//! use ask_wire::prelude::*;
//!
//! let stream = vec![KvTuple::new(Key::from_str("hi")?, 42)];
//! let text = render_trace(&stream);
//! assert_eq!(parse_trace(&text)?, stream);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use ask_wire::key::{Key, KeyError};
use ask_wire::packet::KvTuple;
use bytes::Bytes;
use core::fmt;

/// Error parsing a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A line did not have the `hexkey value` shape.
    MalformedLine {
        /// 1-based line number.
        line: usize,
    },
    /// A key failed hex decoding or validation.
    BadKey {
        /// 1-based line number.
        line: usize,
        /// Underlying key error, if validation failed after decoding.
        source: Option<KeyError>,
    },
    /// The value was not a `u32`.
    BadValue {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::MalformedLine { line } => write!(f, "line {line}: malformed"),
            TraceError::BadKey { line, .. } => write!(f, "line {line}: invalid key"),
            TraceError::BadValue { line } => write!(f, "line {line}: invalid value"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::BadKey {
                source: Some(e), ..
            } => Some(e),
            _ => None,
        }
    }
}

/// Renders a stream as trace text.
pub fn render_trace(stream: &[KvTuple]) -> String {
    let mut out = String::with_capacity(stream.len() * 16);
    for t in stream {
        for b in t.key.as_bytes() {
            out.push_str(&format!("{b:02x}"));
        }
        out.push(' ');
        out.push_str(&t.value.to_string());
        out.push('\n');
    }
    out
}

/// Parses trace text back into a stream. Empty lines and `#` comments are
/// skipped.
///
/// # Errors
///
/// Returns [`TraceError`] describing the first offending line.
pub fn parse_trace(text: &str) -> Result<Vec<KvTuple>, TraceError> {
    let mut out = Vec::new();
    for (ix, raw) in text.lines().enumerate() {
        let line = ix + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (hex, value) = trimmed
            .split_once(' ')
            .ok_or(TraceError::MalformedLine { line })?;
        if hex.is_empty() || hex.len() % 2 != 0 {
            return Err(TraceError::BadKey { line, source: None });
        }
        let mut bytes = Vec::with_capacity(hex.len() / 2);
        for pair in hex.as_bytes().chunks(2) {
            let s = core::str::from_utf8(pair)
                .map_err(|_| TraceError::BadKey { line, source: None })?;
            bytes.push(
                u8::from_str_radix(s, 16).map_err(|_| TraceError::BadKey { line, source: None })?,
            );
        }
        let key = Key::new(Bytes::from(bytes)).map_err(|e| TraceError::BadKey {
            line,
            source: Some(e),
        })?;
        let value: u32 = value
            .trim()
            .parse()
            .map_err(|_| TraceError::BadValue { line })?;
        out.push(KvTuple::new(key, value));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv(s: &str, v: u32) -> KvTuple {
        KvTuple::new(Key::from_str(s).unwrap(), v)
    }

    #[test]
    fn roundtrip() {
        let stream = vec![kv("a", 1), kv("hello-world", 4_000_000_000), kv("Z", 0)];
        assert_eq!(parse_trace(&render_trace(&stream)).unwrap(), stream);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n6869 7\n";
        let parsed = parse_trace(text).unwrap();
        assert_eq!(parsed, vec![kv("hi", 7)]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        assert_eq!(
            parse_trace("garbage").unwrap_err(),
            TraceError::MalformedLine { line: 1 }
        );
        assert_eq!(
            parse_trace("zz 1").unwrap_err(),
            TraceError::BadKey {
                line: 1,
                source: None
            }
        );
        assert_eq!(
            parse_trace("68 notanumber").unwrap_err(),
            TraceError::BadValue { line: 1 }
        );
        // NUL byte in key fails validation with a source.
        let err = parse_trace("00 1").unwrap_err();
        assert!(matches!(
            err,
            TraceError::BadKey {
                line: 1,
                source: Some(_)
            }
        ));
    }

    #[test]
    fn error_display_nonempty() {
        assert!(!TraceError::MalformedLine { line: 3 }.to_string().is_empty());
    }
}
