//! HPC collective workloads: `MPI_Reduce`-style dense vectors and
//! OmniReduce-style sparse vectors — the value-stream patterns the paper's
//! introduction cites for high-performance computing.

use ask_wire::key::Key;
use ask_wire::packet::KvTuple;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense reduce: every rank contributes a value for every element index.
///
/// Returned as `ranks` streams of `(index-key, value)` tuples — the
/// value-stream special case of key-value aggregation (§2.1.2).
pub fn dense_reduce(seed: u64, ranks: usize, elements: u64) -> Vec<Vec<KvTuple>> {
    assert!(ranks > 0 && elements > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..ranks)
        .map(|_| {
            (0..elements)
                .map(|i| KvTuple::new(Key::from_u64(i), rng.gen_range(1..100)))
                .collect()
        })
        .collect()
}

/// A sparse reduce: each rank contributes values for a random subset of the
/// index space (density in `(0, 1]`), as in sparse gradient exchange.
///
/// Sparsity is where key-value INA beats index-synchronized value-stream
/// INA: ranks' indices differ, so the aggregation is genuinely
/// asynchronous (§2.1.3).
///
/// # Panics
///
/// Panics if `density` is outside `(0, 1]`.
pub fn sparse_reduce(seed: u64, ranks: usize, elements: u64, density: f64) -> Vec<Vec<KvTuple>> {
    assert!(ranks > 0 && elements > 0);
    assert!(density > 0.0 && density <= 1.0, "density in (0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..ranks)
        .map(|_| {
            let mut stream = Vec::with_capacity((elements as f64 * density) as usize + 1);
            for i in 0..elements {
                if rng.gen_bool(density) {
                    stream.push(KvTuple::new(Key::from_u64(i), rng.gen_range(1..100)));
                }
            }
            stream
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn dense_covers_every_index_on_every_rank() {
        let streams = dense_reduce(1, 3, 64);
        assert_eq!(streams.len(), 3);
        for s in &streams {
            let idx: HashSet<_> = s.iter().map(|t| t.key.clone()).collect();
            assert_eq!(idx.len(), 64);
        }
    }

    #[test]
    fn sparse_density_is_respected() {
        let streams = sparse_reduce(2, 4, 10_000, 0.1);
        for s in &streams {
            let frac = s.len() as f64 / 10_000.0;
            assert!((0.07..0.13).contains(&frac), "density {frac}");
        }
    }

    #[test]
    fn sparse_ranks_differ_in_indices() {
        let streams = sparse_reduce(3, 2, 1000, 0.2);
        let a: HashSet<_> = streams[0].iter().map(|t| t.key.clone()).collect();
        let b: HashSet<_> = streams[1].iter().map(|t| t.key.clone()).collect();
        assert_ne!(a, b, "asynchronous index sets");
    }

    #[test]
    #[should_panic(expected = "density")]
    fn bad_density_rejected() {
        let _ = sparse_reduce(1, 1, 10, 0.0);
    }
}
