//! Database aggregation workloads: `SELECT group, SUM(x) ... GROUP BY` over
//! a synthetic orders table — the `SUM()` scenario the paper's introduction
//! cites for databases (TPC-H-style).
//!
//! The generator models a denormalized orders table: each row has a
//! low-cardinality group dimension (e.g. market segment × nation), an
//! integer measure, and realistic group-size skew (a few segments dominate
//! order volume).

use crate::zipf::ZipfSampler;
use ask_wire::key::Key;
use ask_wire::packet::KvTuple;
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic `GROUP BY` aggregation query workload.
#[derive(Debug, Clone)]
pub struct GroupByQuery {
    /// Distinct group keys (aggregation cardinality).
    pub groups: usize,
    /// Zipf exponent of the rows-per-group distribution.
    pub group_skew: f64,
    /// Maximum measure value per row (uniform in `1..=max_measure`).
    pub max_measure: u32,
}

impl GroupByQuery {
    /// A TPC-H-Q1-like shape: few groups, heavy rows.
    pub fn tpch_q1_like() -> Self {
        GroupByQuery {
            groups: 6,
            group_skew: 0.2,
            max_measure: 100,
        }
    }

    /// A high-cardinality rollup (e.g. revenue per customer).
    pub fn per_customer_rollup(customers: usize) -> Self {
        GroupByQuery {
            groups: customers,
            group_skew: 1.1,
            max_measure: 50,
        }
    }

    /// Generates `rows` table rows as `(group key, measure)` tuples.
    ///
    /// Group keys are readable strings (`"g<rank>"`), so the workload mixes
    /// short and medium keys like real dimension values.
    pub fn rows(&self, seed: u64, rows: u64) -> Vec<KvTuple> {
        let sampler = ZipfSampler::new(self.groups, self.group_skew);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdb);
        (0..rows)
            .map(|_| {
                let g = sampler.sample(&mut rng);
                let key = Key::new(Bytes::from(format!("g{g}"))).expect("non-empty ASCII");
                KvTuple::new(key, rng.gen_range(1..=self.max_measure))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn q1_like_has_few_groups() {
        let q = GroupByQuery::tpch_q1_like();
        let rows = q.rows(1, 10_000);
        let groups: HashSet<_> = rows.iter().map(|t| t.key.clone()).collect();
        assert!(groups.len() <= 6);
        assert!(rows.iter().all(|t| (1..=100).contains(&t.value)));
    }

    #[test]
    fn rollup_spans_cardinality() {
        let q = GroupByQuery::per_customer_rollup(5_000);
        let rows = q.rows(2, 50_000);
        let groups: HashSet<_> = rows.iter().map(|t| t.key.clone()).collect();
        assert!(groups.len() > 2_000, "got {}", groups.len());
    }

    #[test]
    fn skew_concentrates_rows() {
        let q = GroupByQuery::per_customer_rollup(1000);
        let rows = q.rows(3, 20_000);
        let mut counts = std::collections::HashMap::new();
        for t in &rows {
            *counts.entry(t.key.clone()).or_insert(0u64) += 1;
        }
        let mut v: Vec<u64> = counts.values().copied().collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u64 = v.iter().take(10).sum();
        assert!(
            top10 as f64 / rows.len() as f64 > 0.15,
            "zipf 1.1: top-10 groups carry a large share"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let q = GroupByQuery::tpch_q1_like();
        assert_eq!(q.rows(7, 100), q.rows(7, 100));
        assert_ne!(q.rows(7, 100), q.rows(8, 100));
    }
}
