//! Synthetic text-corpus generators standing in for the paper's production
//! traces (yelp, 20-Newsgroups, Blog Authorship Corpus, Large Movie Review
//! DB).
//!
//! The real traces are word streams from English text. The aspects of those
//! traces that ASK's evaluation depends on are (a) Zipfian word-frequency
//! skew, (b) an English-like word-length distribution (common words are
//! short, tail words long), and (c) corpus-specific vocabulary sizes. The
//! generators reproduce exactly those properties, deterministically.

use crate::zipf::ZipfSampler;
use ask_wire::key::Key;
use ask_wire::packet::KvTuple;
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a synthetic "word" for vocabulary rank `rank`.
///
/// Common (low-rank) words are short, tail words are long — mirroring
/// natural language, where frequency and length are inversely related. Words
/// are unique per rank and contain only lowercase letters.
pub fn word_for_rank(rank: u64) -> Key {
    // Base length = smallest b ≥ 2 with 26^b > rank, so a fixed-length
    // base-26 encoding of `rank` always fits. A deterministic jitter of
    // 0..3 extra characters spreads each rank band over several lengths
    // (real corpora are not perfectly layered by frequency).
    let mut base_len = 2usize;
    let mut cap = 26u64 * 26;
    while cap <= rank {
        base_len += 1;
        cap = cap.saturating_mul(26);
    }
    // Skewed stretch: most words stay near the base length, a minority are
    // much longer — mirroring English token-length distribution, and
    // guaranteeing the corpus mixes short (≤4), medium (5..8), and long
    // (>8) keys across the switch's three key classes.
    let h = ((rank.wrapping_mul(2_654_435_761)) >> 7) % 100;
    let stretch = match h {
        0..=39 => 0,
        40..=69 => 1,
        70..=84 => 2,
        85..=92 => 3,
        93..=96 => 4,
        97..=98 => 6,
        _ => 9,
    };
    let len = (base_len + stretch as usize).min(16);
    // Fixed-length little-endian base-26: words of equal length encode
    // distinct ranks distinctly, and words of different lengths can never
    // collide — so the mapping is injective.
    let mut chars = vec![b'a'; len];
    let mut v = rank;
    let mut i = 0;
    while v > 0 {
        debug_assert!(i < len, "rank fits in len chars by construction");
        chars[i] = b'a' + (v % 26) as u8;
        v /= 26;
        i += 1;
    }
    Key::new(Bytes::from(chars)).expect("letters are non-NUL")
}

/// A parameterized synthetic corpus.
#[derive(Debug, Clone)]
pub struct TextCorpus {
    /// Display name (matches the paper's dataset label).
    pub name: &'static str,
    /// Vocabulary size (distinct words).
    pub vocabulary: usize,
    /// Zipf exponent of word frequencies.
    pub zipf_s: f64,
}

impl TextCorpus {
    /// yelp reviews: huge vocabulary with the strongest head skew of the
    /// four — the paper's worst-case packet occupancy (Figure 8(b), mean
    /// 16.91 of 32 slots) at 92.18% tuple aggregation.
    pub fn yelp() -> Self {
        TextCorpus {
            name: "yelp",
            vocabulary: 200_000,
            zipf_s: 1.0,
        }
    }

    /// 20 Newsgroups: large effective vocabulary with a flat tail — the
    /// paper's lowest aggregation ratio (85.73%) but good occupancy.
    pub fn newsgroups() -> Self {
        TextCorpus {
            name: "NG",
            vocabulary: 100_000,
            zipf_s: 0.85,
        }
    }

    /// Blog Authorship Corpus: compact vocabulary — the paper's
    /// best-aggregating trace (94.32% tuples, 90.36% packets).
    pub fn blog_authorship() -> Self {
        TextCorpus {
            name: "BAC",
            vocabulary: 50_000,
            zipf_s: 0.95,
        }
    }

    /// Large Movie Review Dataset (LMDB in the paper's tables).
    pub fn movie_reviews() -> Self {
        TextCorpus {
            name: "LMDB",
            vocabulary: 90_000,
            zipf_s: 0.92,
        }
    }

    /// All four paper datasets, in Table 1's column order.
    pub fn paper_datasets() -> Vec<TextCorpus> {
        vec![
            TextCorpus::yelp(),
            TextCorpus::newsgroups(),
            TextCorpus::blog_authorship(),
            TextCorpus::movie_reviews(),
        ]
    }

    /// Generates a word-count stream of `total` `(word, 1)` tuples.
    pub fn stream(&self, seed: u64, total: u64) -> Vec<KvTuple> {
        let sampler = ZipfSampler::new(self.vocabulary, self.zipf_s);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0000);
        (0..total)
            .map(|_| {
                let rank = sampler.sample(&mut rng) as u64;
                KvTuple::new(word_for_rank(rank), 1)
            })
            .collect()
    }
}

/// A uniform-random stream over `distinct` short integer keys (the
/// benchmark sections' "uniform distribution" workload).
pub fn uniform_stream(seed: u64, distinct: u64, total: u64) -> Vec<KvTuple> {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..total)
        .map(|_| KvTuple::new(Key::from_u64(rng.gen_range(0..distinct)), 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn words_are_unique_across_ranks() {
        let mut seen = HashSet::new();
        for rank in 0..20_000u64 {
            let w = word_for_rank(rank);
            assert!(seen.insert(w.clone()), "duplicate word at rank {rank}: {w}");
        }
    }

    #[test]
    fn common_words_are_shorter_than_tail_words() {
        let avg = |lo: u64, hi: u64| -> f64 {
            (lo..hi).map(|r| word_for_rank(r).len() as f64).sum::<f64>() / (hi - lo) as f64
        };
        assert!(avg(0, 100) < avg(10_000, 10_100));
    }

    #[test]
    fn word_lengths_span_short_medium_long() {
        let lens: HashSet<usize> = (0..100_000u64)
            .step_by(997)
            .map(|r| word_for_rank(r).len())
            .collect();
        assert!(lens.iter().any(|&l| l <= 4), "some short keys");
        assert!(
            lens.iter().any(|&l| (5..=8).contains(&l)),
            "some medium keys"
        );
        assert!(lens.iter().any(|&l| l > 8), "some long keys");
    }

    #[test]
    fn corpus_stream_is_deterministic() {
        let c = TextCorpus::newsgroups();
        let a = c.stream(1, 500);
        let b = c.stream(1, 500);
        assert_eq!(a, b);
        assert_ne!(a, c.stream(2, 500));
        assert_eq!(a.len(), 500);
        assert!(a.iter().all(|t| t.value == 1));
    }

    #[test]
    fn paper_datasets_have_expected_names() {
        let names: Vec<&str> = TextCorpus::paper_datasets()
            .iter()
            .map(|c| c.name)
            .collect();
        assert_eq!(names, vec!["yelp", "NG", "BAC", "LMDB"]);
    }

    #[test]
    fn uniform_stream_covers_keyspace() {
        let s = uniform_stream(3, 50, 5000);
        let distinct: HashSet<_> = s.iter().map(|t| t.key.clone()).collect();
        assert_eq!(distinct.len(), 50);
    }
}
