//! # ask-workloads — datasets and trace generators for the ASK reproduction
//!
//! Deterministic, seedable generators for every workload in the paper's
//! evaluation:
//!
//! - [`zipf`]: exact bounded Zipf sampling and the hot-first / cold-first /
//!   shuffled stream arrangements of §5.4 (Figure 9);
//! - [`text`]: synthetic stand-ins for the yelp / NG / BAC / LMDB word
//!   traces (Table 1, Figure 8(b)), reproducing their frequency skew and
//!   word-length mix;
//! - [`wordcount`]: the HiBench-style WordCount job shapes of §5.2 and §5.5
//!   (Figures 7, 10, 11);
//! - [`models`]: the six ImageNet models of the distributed-training
//!   comparison (Figure 12);
//! - [`database`] and [`collective`]: the `GROUP BY SUM()` and
//!   `MPI_Reduce` scenarios the paper's introduction cites;
//! - [`stats`]: stream profiling (distinct keys, fitted Zipf exponent,
//!   key-class mix) for calibrating generators against trace descriptions;
//! - [`trace`]: a plain-text format for saving and replaying streams.
//!
//! ```
//! use ask_workloads::text::TextCorpus;
//!
//! let stream = TextCorpus::yelp().stream(42, 1000);
//! assert_eq!(stream.len(), 1000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod collective;
pub mod database;
pub mod models;
pub mod stats;
pub mod text;
pub mod trace;
pub mod wordcount;
pub mod zipf;

/// Convenient glob import.
pub mod prelude {
    pub use crate::collective::{dense_reduce, sparse_reduce};
    pub use crate::database::GroupByQuery;
    pub use crate::models::ModelSpec;
    pub use crate::stats::{profile, StreamProfile};
    pub use crate::text::{uniform_stream, word_for_rank, TextCorpus};
    pub use crate::trace::{parse_trace, render_trace, TraceError};
    pub use crate::wordcount::WordCountJob;
    pub use crate::zipf::{zipf_stream, StreamOrder, ZipfSampler};
}
